module Relation = Rs_relation.Relation
module Dedup = Rs_relation.Dedup
module Pool = Rs_parallel.Pool
module Int_vec = Rs_util.Int_vec
module Int_key = Rs_util.Int_key
module An = Recstep.Analyzer
module Ast = Recstep.Ast

let name = "Graspan-like"

let capabilities =
  {
    Engine_intf.scale_up = true;
    scale_out = false;
    memory_consumption = "low";
    cpu_utilization = "medium";
    cpu_efficiency = "low";
    tuning_required = "yes (lightweight)";
    mutual_recursion = true;
    nonrecursive_aggregation = false;
    recursive_aggregation = false;
    incremental = false;
  }

(* --- grammar normalization --- *)

type oriented = { label : string; reversed : bool }

type production =
  | Edge of { head : string; src : oriented }
  | Self of { head : string; src : string; endpoint : [ `Src | `Dst ] }
  | Compose of { head : string; a : oriented; b : oriented }

let unsupported = Engine_intf.unsupported

(* Orientations of an atom as a (from, to) edge between two distinct vars. *)
let atom_ends a =
  match a.Ast.args with
  | [ Ast.Var u; Ast.Var v ] when u <> v ->
      [ ((u, v), { label = a.Ast.pred; reversed = false });
        ((v, u), { label = a.Ast.pred; reversed = true }) ]
  | _ -> unsupported "%s: atom %s is not a binary edge over distinct variables" name (Ast.atom_to_string a)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y != x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

(* Find an oriented chain covering all atoms from x to y. *)
let find_chain atoms x y =
  let rec orientations = function
    | [] -> [ [] ]
    | a :: rest ->
        let tails = orientations rest in
        List.concat_map (fun o -> List.map (fun t -> o :: t) tails) (atom_ends a)
  in
  let fits chain =
    let rec go from = function
      | [] -> from = y
      | ((u, v), _) :: rest -> u = from && go v rest
    in
    go x chain
  in
  List.find_map
    (fun perm -> List.find_opt fits (orientations perm))
    (permutations atoms)

let fresh_aux =
  let c = ref 0 in
  fun () ->
    incr c;
    Printf.sprintf "@aux%d" !c

let normalize_rule rule =
  List.iter
    (function
      | Ast.L_pos _ -> ()
      | l -> unsupported "%s: literal %s outside the grammar fragment" name (Ast.literal_to_string l))
    rule.Ast.body;
  if Ast.is_aggregate_rule rule then unsupported "%s: aggregation" name;
  let atoms = List.filter_map (function Ast.L_pos a -> Some a | _ -> None) rule.Ast.body in
  match rule.Ast.head_args with
  | [ Ast.H_term (Ast.Var x); Ast.H_term (Ast.Var y) ] when x = y -> (
      (* h(x,x) :- a(...x...): a self production *)
      match atoms with
      | [ a ] -> (
          match a.Ast.args with
          | [ Ast.Var u; Ast.Var _ ] when u = x ->
              [ Self { head = rule.Ast.head_pred; src = a.Ast.pred; endpoint = `Src } ]
          | [ Ast.Var _; Ast.Var v ] when v = x ->
              [ Self { head = rule.Ast.head_pred; src = a.Ast.pred; endpoint = `Dst } ]
          | _ -> unsupported "%s: unsupported self rule %s" name (Ast.rule_to_string rule))
      | _ -> unsupported "%s: unsupported self rule %s" name (Ast.rule_to_string rule))
  | [ Ast.H_term (Ast.Var x); Ast.H_term (Ast.Var y) ] -> (
      match find_chain atoms x y with
      | None -> unsupported "%s: body of %s is not an x->y chain" name (Ast.rule_to_string rule)
      | Some chain -> (
          match List.map snd chain with
          | [ o ] -> [ Edge { head = rule.Ast.head_pred; src = o } ]
          | [ a; b ] -> [ Compose { head = rule.Ast.head_pred; a; b } ]
          | [ a; b; c ] ->
              let aux = fresh_aux () in
              [
                Compose { head = aux; a; b };
                Compose { head = rule.Ast.head_pred; a = { label = aux; reversed = false }; b = c };
              ]
          | _ -> unsupported "%s: more than three atoms in %s" name (Ast.rule_to_string rule)))
  | _ -> unsupported "%s: head of %s is not binary" name (Ast.rule_to_string rule)

(* --- edge store --- *)

type label_store = {
  dedup : Dedup.t;
  succ : (int, Int_vec.t) Hashtbl.t;
  pred : (int, Int_vec.t) Hashtbl.t;
}

let make_label_store () =
  { dedup = Dedup.create Dedup.Fast 2; succ = Hashtbl.create 256; pred = Hashtbl.create 256 }

let adj_push table k v =
  let vec =
    match Hashtbl.find_opt table k with
    | Some vec -> vec
    | None ->
        let vec = Int_vec.create ~capacity:4 () in
        Hashtbl.add table k vec;
        vec
  in
  Int_vec.push vec v

let insert_edge ls u v =
  if Dedup.add2 ls.dedup u v then begin
    adj_push ls.succ u v;
    adj_push ls.pred v u;
    true
  end
  else false

let iter_out ls z reversed f =
  let table = if reversed then ls.pred else ls.succ in
  match Hashtbl.find_opt table z with Some vec -> Int_vec.iter f vec | None -> ()

let iter_in ls z reversed f =
  let table = if reversed then ls.succ else ls.pred in
  match Hashtbl.find_opt table z with Some vec -> Int_vec.iter f vec | None -> ()

let store_bytes ls =
  let adj t = Hashtbl.fold (fun _ v acc -> acc + Int_vec.capacity_bytes v + 32) t 0 in
  Dedup.bytes ls.dedup + adj ls.succ + adj ls.pred

let run ~pool ?deadline_vs ?trace ~edb program =
  let an = An.analyze program in
  List.iter
    (fun (p, arity) -> if arity <> 2 then unsupported "%s: relation %s has arity %d" name p arity)
    an.An.arities;
  let rounds = ref 0 in
  let productions = List.concat_map normalize_rule an.An.program.Ast.rules in
  (* label table *)
  let stores : (string, label_store) Hashtbl.t = Hashtbl.create 32 in
  let store l =
    match Hashtbl.find_opt stores l with
    | Some s -> s
    | None ->
        let s = make_label_store () in
        Hashtbl.add stores l s;
        s
  in
  (* index productions by participating label *)
  let by_label : (string, production) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun p ->
      match p with
      | Edge { src; _ } -> Hashtbl.add by_label src.label p
      | Self { src; _ } -> Hashtbl.add by_label src p
      | Compose { a; b; _ } ->
          Hashtbl.add by_label a.label p;
          if a.label <> b.label then Hashtbl.add by_label b.label p)
    productions;
  let accounted = ref 0 in
  let reaccount () =
    let b = Hashtbl.fold (fun _ s acc -> acc + store_bytes s) stores 0 in
    let delta = b - !accounted in
    if delta > 0 then Rs_storage.Memtrack.alloc delta else Rs_storage.Memtrack.free (-delta);
    accounted := b
  in
  let check_deadline () =
    match deadline_vs with
    | Some budget ->
        let v = Pool.vtime_now pool in
        if v > budget then raise (Recstep.Interpreter.Timeout_simulated v)
    | None -> ()
  in
  (* seed with EDB edges *)
  let worklist = ref [] in
  List.iter
    (fun p ->
      match List.assoc_opt p edb with
      | Some r ->
          let ls = store p in
          for row = 0 to Relation.nrows r - 1 do
            let u = Relation.get r ~row ~col:0 and v = Relation.get r ~row ~col:1 in
            (* edges travel packed through the worklist; vertices outside the
               packed range (negative ids) would be corrupted by unpack2 *)
            if not (Int_key.fits2 u v) then
              unsupported "%s: vertex id outside [0, 2^31) in %s" name p;
            if insert_edge ls u v then worklist := (p, Int_key.pack2 u v) :: !worklist
          done
      | None -> unsupported "%s: missing input %s" name p)
    an.An.edbs;
  reaccount ();
  (* rounds: sort the batch (Graspan's sort-heavy processing), expand in
     parallel against the adjacency lists, then a serial merge *)
  let batch = ref (Array.of_list !worklist) in
  while Array.length !batch > 0 do
    check_deadline ();
    incr rounds;
    (match trace with
    | Some tr ->
        Rs_obs.Trace.begin_span tr ~kind:"engine" (Printf.sprintf "round-%d" !rounds);
        Rs_obs.Trace.count tr "graspan.batch_edges" (Array.length !batch)
    | None -> ());
    (* Graspan is disk-based: every round loads and stores edge partitions.
       Model that I/O (1 ms seek + 150 MB/s on 16-byte edges) — it is the
       dominant cost the paper measures for Graspan, which our in-memory
       adjacency lists would otherwise hide. *)
    Pool.add_serial pool (0.001 +. (float_of_int (16 * Array.length !batch) /. 150e6));
    Array.sort compare !batch;
    let fragments = ref [] in
    let arr = !batch in
    Pool.parallel_for pool 0 (Array.length arr) (fun lo hi ->
        let out = Int_vec.create () in
        let out_labels = ref [] in
        let emit head u v =
          out_labels := head :: !out_labels;
          Int_vec.push out (Int_key.pack2 u v)
        in
        for i = lo to hi - 1 do
          let label, key = arr.(i) in
          let u, v = Int_key.unpack2 key in
          List.iter
            (fun p ->
              match p with
              | Edge { head; src } ->
                  if src.label = label then
                    if src.reversed then emit head v u else emit head u v
              | Self { head; src; endpoint } ->
                  if src = label then (
                    match endpoint with `Src -> emit head u u | `Dst -> emit head v v)
              | Compose { head; a; b } ->
                  if a.label = label then begin
                    let x, z = if a.reversed then (v, u) else (u, v) in
                    iter_out (store b.label) z b.reversed (fun y -> emit head x y)
                  end;
                  if b.label = label then begin
                    let z, y = if b.reversed then (v, u) else (u, v) in
                    iter_in (store a.label) z a.reversed (fun x -> emit head x y)
                  end)
            (Hashtbl.find_all by_label label)
        done;
        fragments := (List.rev !out_labels, out) :: !fragments);
    (* serial merge: dedup-insert the candidates, building the next batch *)
    let next = ref [] in
    List.iter
      (fun (labels, out) ->
        List.iteri
          (fun i head ->
            let key = Int_vec.get out i in
            let u, w = Int_key.unpack2 key in
            if insert_edge (store head) u w then next := (head, key) :: !next)
          labels)
      (List.rev !fragments);
    reaccount ();
    batch := Array.of_list !next;
    (match trace with
    | Some tr ->
        (* one worklist round = one fixpoint iteration over all labels *)
        Rs_obs.Trace.iteration tr
          {
            Rs_obs.Trace.it_stratum = 0;
            it_iteration = !rounds;
            it_idb = "worklist";
            it_delta_rows = Array.length !batch;
            it_vtime = Pool.vtime_now pool;
          };
        Rs_obs.Trace.end_span tr
    | None -> ())
  done;
  let relation_of p =
    match Hashtbl.find_opt stores p with
    | Some ls ->
        let r = Relation.create ~name:p 2 in
        Hashtbl.iter (fun u vec -> Int_vec.iter (fun v -> Relation.push2 r u v) vec) ls.succ
        |> ignore;
        Relation.account r;
        r
    | None when List.mem_assoc p an.An.arities ->
        (* known predicate that derived no edges (stores are created
           lazily): the empty relation, not an error *)
        let r = Relation.create ~name:p 2 in
        Relation.account r;
        r
    | None -> invalid_arg (Printf.sprintf "%s: unknown relation %s" name p)
  in
  Engine_intf.mk_result ~pool ?trace ~iterations:!rounds ~queries:!rounds relation_of

let maintain ~pool ?trace ~edb program =
  Engine_intf.maintain_by_recompute run ~pool ?trace ~edb program
