(** RecStep on simulated shard nodes, behind the common engine interface.

    The scale-out configuration of the home engine: {!Rs_shard.Shard_exec}
    hash-partitions the EDB across [shards] virtual nodes and evaluates
    with colocation-aware planning. Unlike the Distributed-BigDatalog
    baseline (which models scale-out as "more cores plus stage overhead"),
    this engine pays real movement costs — broadcast copies, repartition
    shuffles, skew-bound supersteps — on the simulated clock. *)

module Shard_exec = Rs_shard.Shard_exec

let default_shards = 4

let name = "Sharded-RecStep"

let capabilities =
  {
    Engine_intf.scale_up = true;
    scale_out = true;
    memory_consumption = "low";
    cpu_utilization = "high";
    cpu_efficiency = "high";
    tuning_required = "no";
    mutual_recursion = true;
    nonrecursive_aggregation = false;
    recursive_aggregation = false;
    incremental = false;
  }

let run_sharded ~shards ~pool ?deadline_vs ?trace ~edb program =
  let options = Shard_exec.options ~shards ?timeout_vs:deadline_vs ?trace () in
  match Shard_exec.run ~options ~pool ~edb program with
  | r ->
      Engine_intf.mk_result ~pool ?trace ~iterations:r.Shard_exec.iterations
        ~queries:r.Shard_exec.queries r.Shard_exec.relation_of
  | exception Shard_exec.Unsupported m -> Engine_intf.unsupported "%s" m

let run ~pool ?deadline_vs ?trace ~edb program =
  run_sharded ~shards:default_shards ~pool ?deadline_vs ?trace ~edb program

let maintain ~pool ?trace ~edb program =
  Engine_intf.maintain_by_recompute run ~pool ?trace ~edb program

(* Parametrized variant for benchmarks scaling the node count. *)
let make ~shards : Engine_intf.engine =
  (module struct
    let name = Printf.sprintf "Sharded-RecStep[%d]" shards

    let capabilities = capabilities

    let run ~pool ?deadline_vs ?trace ~edb program =
      run_sharded ~shards ~pool ?deadline_vs ?trace ~edb program

    let maintain ~pool ?trace ~edb program =
      Engine_intf.maintain_by_recompute run ~pool ?trace ~edb program
  end)
