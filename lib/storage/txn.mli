(** Transaction semantics of the storage backend (the paper's EOST).

    QuickStep treats each state-changing query as a transaction and writes
    dirty pages back after it. RecStep's EOST optimization pends all I/O
    until the fixpoint is reached and commits once. This module reproduces
    both behaviours against a real scratch file so the I/O cost is real:

    - {!Per_query}: {!query_boundary} flushes all dirty bytes to disk;
    - {!Eost}: dirty bytes accumulate and {!finish} writes them once. *)

type mode = Eost | Per_query

type t

val create : ?scratch:string -> ?on_flush:(int -> unit) -> ?trace:Rs_obs.Trace.t -> mode -> t
(** [create mode] opens the scratch file (default
    [_recstep_scratch.bin] in the temp directory, truncated per flush).
    [on_flush bytes] is invoked after each physical flush — the engine uses
    it to charge modeled disk time (seek latency + bytes/bandwidth) to the
    simulated clock, since the container's page cache hides most of the real
    cost the paper's system pays. When [trace] is given, each physical flush
    records a ["storage"/"flush"] span plus [storage.flushes] and
    [storage.flush_bytes] counters, and {!note_dirty} feeds
    [storage.dirty_bytes] (and [storage.eost_pend_bytes] under {!Eost}). *)

val mode : t -> mode

val note_dirty : t -> int -> unit
(** Record that a query dirtied [bytes] of table pages. *)

val query_boundary : t -> unit
(** Commit point after each query: flushes in {!Per_query} mode, no-op under
    {!Eost}. *)

val finish : t -> unit
(** Final commit (always flushes remaining dirty bytes) and closes the
    scratch file. *)

val discard : t -> unit
(** Abort-path cleanup: drop pending dirty bytes and remove the scratch file
    {e without} flushing. A no-op after {!finish}, so callers can put it in a
    [Fun.protect] finally unconditionally — a run that dies mid-fixpoint then
    can't leak the open scratch channel. *)

val bytes_written : t -> int
(** Total bytes physically written so far. *)

val flush_count : t -> int
