exception Simulated_oom of { requested : int; live : int; budget : int }

let live_bytes = Atomic.make 0
let peak_bytes = Atomic.make 0
let budget_ref = Atomic.make (-1) (* -1 = none *)
let machine = Atomic.make (2 * 1024 * 1024 * 1024)

let live () = Atomic.get live_bytes
let peak () = Atomic.get peak_bytes

let rec bump_peak v =
  let p = Atomic.get peak_bytes in
  if v > p && not (Atomic.compare_and_set peak_bytes p v) then bump_peak v

let alloc bytes =
  if bytes <> 0 then begin
    let v = Atomic.fetch_and_add live_bytes bytes + bytes in
    let b = Atomic.get budget_ref in
    if b >= 0 && v > b then begin
      (* Roll back so the caller can recover and report OOM like the paper. *)
      ignore (Atomic.fetch_and_add live_bytes (-bytes));
      raise (Simulated_oom { requested = bytes; live = v - bytes; budget = b })
    end;
    (* Chaos fault point: a plan-driven allocation failure once live bytes
       reach the plan's threshold. Rolled back exactly like a budget OOM, so
       recovery paths can't tell the two apart — which is the point. *)
    if Rs_chaos.Inject.mem_should_fail ~live:v then begin
      ignore (Atomic.fetch_and_add live_bytes (-bytes));
      raise (Simulated_oom { requested = bytes; live = v - bytes; budget = b })
    end;
    bump_peak v
  end

let free bytes = if bytes <> 0 then ignore (Atomic.fetch_and_add live_bytes (-bytes))

let reset_peak () = Atomic.set peak_bytes (Atomic.get live_bytes)

let hard_reset () =
  Atomic.set live_bytes 0;
  Atomic.set peak_bytes 0

let set_budget = function
  | Some b -> Atomic.set budget_ref b
  | None -> Atomic.set budget_ref (-1)

let budget () =
  let b = Atomic.get budget_ref in
  if b < 0 then None else Some b

let machine_bytes () = Atomic.get machine
let set_machine_bytes b = Atomic.set machine (max 1 b)

let percent bytes = 100.0 *. float_of_int bytes /. float_of_int (machine_bytes ())
