type mode = Eost | Per_query

type t = {
  mode : mode;
  mutable chan : out_channel option;
  path : string;
  mutable dirty : int;
  mutable written : int;
  mutable flushes : int;
  on_flush : int -> unit;
  trace : Rs_obs.Trace.t option;
}

let buffer = Bytes.make 65536 '\000'

let create ?scratch ?(on_flush = fun _ -> ()) ?trace mode =
  let path =
    match scratch with
    | Some p -> p
    | None -> Filename.concat (Filename.get_temp_dir_name ()) "_recstep_scratch.bin"
  in
  { mode; chan = None; path; dirty = 0; written = 0; flushes = 0; on_flush; trace }

let mode t = t.mode

let note_dirty t bytes =
  if bytes > 0 then begin
    t.dirty <- t.dirty + bytes;
    match t.trace with
    | Some tr ->
        Rs_obs.Trace.count tr "storage.dirty_bytes" bytes;
        if t.mode = Eost then Rs_obs.Trace.count tr "storage.eost_pend_bytes" bytes
    | None -> ()
  end

let channel t =
  match t.chan with
  | Some c -> c
  | None ->
      let c = open_out_bin t.path in
      t.chan <- Some c;
      c

let flush_dirty t =
  if t.dirty > 0 then begin
    (* Chaos fault point: a forced abort of the pending flush. The dirty
       counter is left intact — a retried run re-creates the transaction and
       re-pends its writes. *)
    Rs_chaos.Inject.txn_should_abort ~point:"txn.flush";
    let go () =
      let c = channel t in
      seek_out c 0;
      let remaining = ref t.dirty in
      while !remaining > 0 do
        let n = min !remaining (Bytes.length buffer) in
        output_bytes c (Bytes.sub buffer 0 n);
        remaining := !remaining - n
      done;
      flush c;
      t.written <- t.written + t.dirty;
      t.flushes <- t.flushes + 1;
      t.on_flush t.dirty;
      (match t.trace with
      | Some tr ->
          Rs_obs.Trace.count tr "storage.flushes" 1;
          Rs_obs.Trace.count tr "storage.flush_bytes" t.dirty
      | None -> ());
      t.dirty <- 0
    in
    match t.trace with
    | Some tr -> Rs_obs.Trace.span tr ~kind:"storage" "flush" go
    | None -> go ()
  end

let query_boundary t = match t.mode with Per_query -> flush_dirty t | Eost -> ()

let finish t =
  flush_dirty t;
  (match t.chan with
  | Some c ->
      close_out c;
      t.chan <- None
  | None -> ());
  if Sys.file_exists t.path then try Sys.remove t.path with Sys_error _ -> ()

(* Abort-path cleanup: drop pending writes and the scratch file without
   flushing. Safe to call after [finish] (everything is already closed and
   removed); the interpreter runs it from its exception-protected finally so
   a run that dies mid-fixpoint can't leak the open scratch channel. *)
let discard t =
  t.dirty <- 0;
  (match t.chan with
  | Some c ->
      close_out_noerr c;
      t.chan <- None
  | None -> ());
  if Sys.file_exists t.path then try Sys.remove t.path with Sys_error _ -> ()

let bytes_written t = t.written

let flush_count t = t.flushes
