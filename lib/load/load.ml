module Service = Rs_service.Service
module Edb_store = Rs_service.Edb_store
module Admission = Rs_service.Admission
module Json = Rs_obs.Json
module Histogram = Rs_obs.Histogram
module Rng = Rs_util.Rng
module Delta = Rs_relation.Delta
module Graphs = Rs_datagen.Graphs
module Programs = Recstep.Programs

type slo_class = Gold | Silver | Bronze

let class_name = function Gold -> "gold" | Silver -> "silver" | Bronze -> "bronze"
let all_classes = [ Gold; Silver; Bronze ]

type spec = {
  tenants : int;
  queries : int;
  seed : int;
  duration_s : float;
  skew : float;
  burstiness : float;
  bursts : int;
  deltas : int;
  slo_gold_s : float;
  slo_silver_s : float;
  slo_bronze_s : float;
  deadlines : bool;
}

let spec ?(tenants = 10_000) ?(queries = 400) ?(seed = 1) ?(duration_s = 60.0)
    ?(skew = 1.1) ?(burstiness = 0.7) ?(bursts = 4) ?(deltas = 4)
    ?(slo_gold_s = 0.05) ?(slo_silver_s = 0.2) ?(slo_bronze_s = 1.0)
    ?(deadlines = false) () =
  {
    tenants = max 1 tenants;
    queries = max 0 queries;
    seed;
    duration_s = max 1e-3 duration_s;
    skew = max 0.0 skew;
    burstiness = min 1.0 (max 0.0 burstiness);
    bursts = max 1 bursts;
    deltas = max 0 deltas;
    slo_gold_s;
    slo_silver_s;
    slo_bronze_s;
    deadlines;
  }

let target_s s = function
  | Gold -> s.slo_gold_s
  | Silver -> s.slo_silver_s
  | Bronze -> s.slo_bronze_s

type t = {
  spec : spec;
  events : Service.event list;
  make_store : unit -> Edb_store.t;
  class_of : string -> slo_class;
  tenants_used : int;
  class_population : (slo_class * int) list;
}

(* Rank cuts: the heaviest ~1% of the population is Gold, the next ~9%
   Silver, the tail Bronze — at least one tenant in each of the top tiers
   so small specs still exercise all three targets. *)
let class_of_rank ~tenants rank =
  let gold_cut = max 1 (tenants / 100) in
  let silver_cut = max (gold_cut + 1) (tenants / 10) in
  if rank < gold_cut then Gold else if rank < silver_cut then Silver else Bronze

let db_of_class = function
  | Gold -> "db_gold"
  | Silver -> "db_silver"
  | Bronze -> "db_bronze"

(* size-class databases: bigger tenants, bigger shared graph — sized so
   the joins have enough rows for the pool's chunking to matter, i.e. so
   worker count is a real capacity knob *)
let db_nodes = function Gold -> 192 | Silver -> 128 | Bronze -> 96

(* Per-tenant programs: each tenant watches the graph from its own source
   vertex, so distinct tenants are distinct cache keys (the cross-tenant
   diversity that makes the cache and the engines both work) while a
   tenant's own repeats hit. [reach_src] is single-source TC — recursive;
   [twohop_src] is the non-recursive fast lane. *)
let reach_src c =
  Printf.sprintf
    ".input arc\nreach(y) :- arc(%d, y).\nreach(y) :- reach(x), arc(x, y).\n.output reach"
    c

let twohop_src c =
  Printf.sprintf ".input arc\ntwohop(y) :- arc(%d, x), arc(x, y).\n.output twohop" c

let generate spec =
  let rng = Rng.create spec.seed in
  let zipf = Zipf.create ~n:spec.tenants ~s:spec.skew in
  let sg = Programs.parsed Programs.sg in
  let parsed_memo : (string, Recstep.Ast.program) Hashtbl.t = Hashtbl.create 256 in
  let parsed src =
    match Hashtbl.find_opt parsed_memo src with
    | Some p -> p
    | None ->
        let p = Programs.parsed src in
        Hashtbl.add parsed_memo src p;
        p
  in
  let drawn : (string, slo_class) Hashtbl.t = Hashtbl.create 1024 in
  let burst_width = spec.duration_s /. (4.0 *. float_of_int spec.bursts) in
  let arrival () =
    if Rng.bool rng spec.burstiness then begin
      (* storm: a uniform spot inside one of the burst windows *)
      let b = Rng.int rng spec.bursts in
      let center =
        spec.duration_s *. ((float_of_int b +. 0.5) /. float_of_int spec.bursts)
      in
      let at = center -. (burst_width /. 2.0) +. Rng.float rng burst_width in
      min spec.duration_s (max 0.0 at)
    end
    else Rng.float rng spec.duration_s
  in
  let submissions =
    List.init spec.queries (fun _ ->
        let rank = Zipf.sample zipf rng in
        let tenant = "t" ^ string_of_int rank in
        let cls = class_of_rank ~tenants:spec.tenants rank in
        if not (Hashtbl.mem drawn tenant) then Hashtbl.add drawn tenant cls;
        let source = rank mod db_nodes cls in
        let program, mem =
          match Rng.int rng 10 with
          | 0 | 1 | 2 | 3 | 4 -> (parsed (reach_src source), Admission.Small)
          | 5 | 6 | 7 -> (sg, Admission.Medium)
          | _ -> (parsed (twohop_src source), Admission.Small)
        in
        let deadline_vs =
          if spec.deadlines then Some (8.0 *. target_s spec cls) else None
        in
        Service.Submit
          (Service.submission ~at:(arrival ()) ?deadline_vs ~mem ~tenant
             ~edb:(db_of_class cls) program))
  in
  let delta_events =
    List.init spec.deltas (fun d ->
        let cls = List.nth all_classes (d mod 3) in
        let n = db_nodes cls in
        let ops =
          List.init 4 (fun _ ->
              {
                Delta.sign = Delta.Insert;
                row = [| Rng.int rng n; Rng.int rng n |];
              })
        in
        let at =
          spec.duration_s *. ((float_of_int d +. 0.5) /. float_of_int (max 1 spec.deltas))
        in
        Service.delta_event ~at ~edb:(db_of_class cls) [ ("arc", ops) ])
  in
  let make_store () =
    let t = Edb_store.create () in
    List.iteri
      (fun i cls ->
        Edb_store.define t (db_of_class cls)
          [ ("arc", Graphs.gnp ~seed:(spec.seed + (7 * (i + 1))) ~n:(db_nodes cls) ~p:0.05) ])
      all_classes;
    t
  in
  let class_population =
    List.map
      (fun c ->
        (c, Hashtbl.fold (fun _ c' acc -> if c' = c then acc + 1 else acc) drawn 0))
      all_classes
  in
  {
    spec;
    events =
      (* arrival order, auto ids already assigned in generation order;
         stable so simultaneous arrivals keep their draw order *)
      List.stable_sort
        (fun a b -> compare (Service.event_time a) (Service.event_time b))
        (submissions @ delta_events);
    make_store;
    class_of =
      (fun tenant ->
        match Hashtbl.find_opt drawn tenant with Some c -> c | None -> Bronze);
    tenants_used = Hashtbl.length drawn;
    class_population;
  }

type class_stats = {
  cs_class : slo_class;
  cs_target_s : float;
  cs_tenants : int;
  cs_served : int;
  cs_degraded : int;
  cs_failed : int;
  cs_rejected : int;
  cs_within : int;
  cs_hist : Histogram.t;
}

let attainment cs =
  if cs.cs_served = 0 then 1.0
  else float_of_int cs.cs_within /. float_of_int cs.cs_served

let slo_stats t (report : Service.report) =
  let stats =
    List.map
      (fun c ->
        ( c,
          ref
            {
              cs_class = c;
              cs_target_s = target_s t.spec c;
              cs_tenants = List.assoc c t.class_population;
              cs_served = 0;
              cs_degraded = 0;
              cs_failed = 0;
              cs_rejected = 0;
              cs_within = 0;
              cs_hist = Histogram.create ();
            } ))
      all_classes
  in
  List.iter
    (fun (c : Service.completion) ->
      let cell = List.assoc (t.class_of c.Service.c_tenant) stats in
      let cs = !cell in
      match c.Service.c_outcome with
      | Service.Done _ ->
          let lat = c.Service.c_finished -. c.Service.c_at in
          (* degraded served results are part of the distribution — the
             tenant waited for them — and counted separately *)
          Histogram.add cs.cs_hist lat;
          cell :=
            {
              cs with
              cs_served = cs.cs_served + 1;
              cs_degraded =
                (cs.cs_degraded + if c.Service.c_degraded <> None then 1 else 0);
              cs_within =
                (cs.cs_within + if lat <= cs.cs_target_s then 1 else 0);
            }
      | Service.Rejected _ -> cell := { cs with cs_rejected = cs.cs_rejected + 1 }
      | _ -> cell := { cs with cs_failed = cs.cs_failed + 1 })
    report.Service.completions;
  List.map (fun (_, cell) -> !cell) stats

let spec_json s =
  Json.Obj
    [
      ("tenants", Json.Int s.tenants);
      ("queries", Json.Int s.queries);
      ("seed", Json.Int s.seed);
      ("duration_s", Json.Float s.duration_s);
      ("skew", Json.Float s.skew);
      ("burstiness", Json.Float s.burstiness);
      ("bursts", Json.Int s.bursts);
      ("deltas", Json.Int s.deltas);
      ( "slo_s",
        Json.Obj
          [
            ("gold", Json.Float s.slo_gold_s);
            ("silver", Json.Float s.slo_silver_s);
            ("bronze", Json.Float s.slo_bronze_s);
          ] );
      ("deadlines", Json.Bool s.deadlines);
    ]

let class_json cs =
  Json.Obj
    [
      ("class", Json.String (class_name cs.cs_class));
      ("target_s", Json.Float cs.cs_target_s);
      ("tenants", Json.Int cs.cs_tenants);
      ("served", Json.Int cs.cs_served);
      ("degraded", Json.Int cs.cs_degraded);
      ("failed", Json.Int cs.cs_failed);
      ("rejected", Json.Int cs.cs_rejected);
      ("attainment", Json.Float (attainment cs));
      ("latency", Histogram.quantile_json cs.cs_hist);
    ]

(* the busiest tenants, for the "who is eating the cluster" view *)
let top_tenants t (report : Service.report) k =
  let per : (string, int * int * float * float * int) Hashtbl.t =
    Hashtbl.create 256
  in
  List.iter
    (fun (c : Service.completion) ->
      let qs, served, sum, mx, within =
        Option.value ~default:(0, 0, 0.0, 0.0, 0)
          (Hashtbl.find_opt per c.Service.c_tenant)
      in
      match c.Service.c_outcome with
      | Service.Done _ ->
          let lat = c.Service.c_finished -. c.Service.c_at in
          let target = target_s t.spec (t.class_of c.Service.c_tenant) in
          Hashtbl.replace per c.Service.c_tenant
            ( qs + 1,
              served + 1,
              sum +. lat,
              max mx lat,
              within + if lat <= target then 1 else 0 )
      | _ -> Hashtbl.replace per c.Service.c_tenant (qs + 1, served, sum, mx, within))
    report.Service.completions;
  let rows = Hashtbl.fold (fun t v acc -> (t, v) :: acc) per [] in
  let rows =
    List.sort
      (fun (t1, (q1, _, _, _, _)) (t2, (q2, _, _, _, _)) ->
        match compare q2 q1 with 0 -> compare t1 t2 | c -> c)
      rows
  in
  List.filteri (fun i _ -> i < k) rows

let autoscale_json (report : Service.report) =
  Json.Obj
    (List.map
       (fun k -> (k, Json.Int (Service.counter report ("autoscale." ^ k))))
       [ "evals"; "up"; "down"; "cache_up"; "cache_down" ])

let slo_json t report =
  let stats = slo_stats t report in
  Json.Obj
    [
      ("version", Json.Int 1);
      ("spec", spec_json t.spec);
      ("tenants_used", Json.Int t.tenants_used);
      ("makespan_s", Json.Float report.Service.vtime);
      ("throughput", Json.Float report.Service.throughput);
      ("served_degraded", Json.Int report.Service.served_degraded);
      ("classes", Json.List (List.map class_json stats));
      ("autoscale", autoscale_json report);
      ( "top_tenants",
        Json.List
          (List.map
             (fun (tenant, (qs, served, sum, mx, within)) ->
               Json.Obj
                 [
                   ("tenant", Json.String tenant);
                   ("class", Json.String (class_name (t.class_of tenant)));
                   ("queries", Json.Int qs);
                   ("served", Json.Int served);
                   ( "mean_s",
                     Json.Float (if served = 0 then 0.0 else sum /. float_of_int served)
                   );
                   ("max_s", Json.Float mx);
                   ( "attainment",
                     Json.Float
                       (if served = 0 then 1.0
                        else float_of_int within /. float_of_int served) );
                 ])
             (top_tenants t report 8)) );
      ( "counters",
        Json.Obj
          (List.map
             (fun (k, v) -> (k, Json.Int v))
             report.Service.counters) );
    ]

let slo_summary t report =
  let stats = slo_stats t report in
  let rows =
    List.map
      (fun cs ->
        let h = cs.cs_hist in
        (* a class that served nothing has no latency distribution: print
           "-" rather than quantiles of zero, mirroring quantile_json *)
        let pct p =
          if Histogram.count h = 0 then "-"
          else Printf.sprintf "%.4f" (Histogram.percentile h p)
        in
        [
          class_name cs.cs_class;
          string_of_int cs.cs_tenants;
          string_of_int cs.cs_served;
          string_of_int cs.cs_degraded;
          string_of_int (cs.cs_failed + cs.cs_rejected);
          Printf.sprintf "%.3f" cs.cs_target_s;
          Printf.sprintf "%.1f%%" (100.0 *. attainment cs);
          pct 50.0;
          pct 95.0;
          pct 99.0;
          pct 99.9;
        ])
      stats
  in
  let table =
    Rs_util.Table_printer.render
      ~header:
        [
          "class"; "tenants"; "served"; "degraded"; "lost"; "slo (s)"; "attain";
          "p50"; "p95"; "p99"; "p999";
        ]
      rows
  in
  Printf.sprintf
    "%s%d tenants drawn of %d  makespan=%.3fs  throughput=%.1f q/s  \
     autoscale: evals=%d up=%d down=%d\n"
    table t.tenants_used t.spec.tenants report.Service.vtime
    report.Service.throughput
    (Service.counter report "autoscale.evals")
    (Service.counter report "autoscale.up")
    (Service.counter report "autoscale.down")
