type t = { size : int; cdf : float array }

let create ~n ~s =
  let n = max 1 n in
  let s = max 0.0 s in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    acc := !acc +. (1.0 /. (float_of_int (k + 1) ** s));
    cdf.(k) <- !acc
  done;
  let z = !acc in
  for k = 0 to n - 1 do
    cdf.(k) <- cdf.(k) /. z
  done;
  { size = n; cdf }

let n t = t.size

let weight t k =
  if k < 0 || k >= t.size then 0.0
  else if k = 0 then t.cdf.(0)
  else t.cdf.(k) -. t.cdf.(k - 1)

(* smallest rank whose cumulative mass covers [u] *)
let sample t rng =
  let u = Rs_util.Rng.float rng 1.0 in
  let lo = ref 0 and hi = ref (t.size - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo
