(** Zipf-distributed rank sampling for the tenant population.

    Multi-tenant traffic is heavy-tailed: a handful of tenants generate
    most of the queries while a long tail barely shows up (the Citus
    capacity-planning shape). [Zipf.create ~n ~s] fixes the distribution
    [P(rank = k) ∝ 1/(k+1)^s] over ranks [0..n-1]; {!sample} draws from it
    by inverse CDF (binary search, O(log n)). Deterministic given the
    caller's {!Rs_util.Rng} stream. [s = 0] degenerates to uniform. *)

type t

val create : n:int -> s:float -> t
(** [n >= 1]; [s >= 0] (clamped). The CDF is materialized once: O(n) space,
    built in O(n). *)

val n : t -> int

val sample : t -> Rs_util.Rng.t -> int
(** A rank in [0, n): 0 is the heaviest. *)

val weight : t -> int -> float
(** [weight t k]: the probability mass of rank [k]. *)
