(** Synthetic multi-tenant load model at production shape (ROADMAP item 5).

    The serving layer's unit tests drive it with a handful of tenants; the
    paper's scaling story needs the other regime — a very large tenant
    population with Zipf-skewed traffic, bursty open-loop arrivals, shared
    databases, and per-tenant latency objectives. This module generates
    that workload deterministically from a {!spec} and scores a service
    run against it:

    - {b population}: [tenants] ranks under a Zipf([skew]) draw; rank 0 is
      the heaviest. The top ~1% of ranks are {!Gold}, the next ~9%
      {!Silver}, the rest {!Bronze} — each class with its own SLO latency
      target and its own shared database (size-class multi-tenancy: tenants
      of a class query the same graph, the Citus capacity-planning shape).
    - {b traffic}: [queries] open-loop submissions over [duration_s]
      simulated seconds. A [burstiness] fraction of arrivals lands inside
      [bursts] short windows (storms), the rest spread uniformly. The
      program mix, drawn per query: single-source reachability from a
      tenant-specific vertex (recursive; distinct tenants are distinct
      cache keys, a tenant's repeats hit), shared SG, and a non-recursive
      tenant-specific two-hop.
    - {b churn}: [deltas] typed insert deltas against the shared databases,
      spread over the horizon, so IVM refresh and cache invalidation are
      exercised under load.

    Everything is a pure function of [spec] — two calls to {!generate}
    yield identical event lists, and the store builder is replayable so
    one generated load can drive several service configurations (the
    autoscaler A/B of the [load] benchmark).

    {!slo_stats} folds a {!Rs_service.Service.report} into per-class SLO
    accounting: full latency histograms ({!Rs_obs.Histogram}) over {e all}
    served results — degraded ones included, counted separately — plus
    attainment against the class target, failures and rejections. *)

module Service = Rs_service.Service
module Json = Rs_obs.Json
module Histogram = Rs_obs.Histogram

type slo_class = Gold | Silver | Bronze

val class_name : slo_class -> string
(** "gold" / "silver" / "bronze". *)

type spec = {
  tenants : int;  (** population size (ranks); >= 1 *)
  queries : int;  (** total submissions over the horizon *)
  seed : int;
  duration_s : float;  (** arrival horizon, simulated seconds *)
  skew : float;  (** Zipf exponent; 0 = uniform traffic *)
  burstiness : float;  (** fraction of arrivals inside burst windows *)
  bursts : int;  (** number of burst windows across the horizon *)
  deltas : int;  (** EDB churn events spread over the horizon *)
  slo_gold_s : float;  (** per-class latency targets, simulated seconds *)
  slo_silver_s : float;
  slo_bronze_s : float;
  deadlines : bool;
      (** attach hard per-query deadlines (8x the class target); off by
          default — SLOs are accounting targets, not admission knives, and
          the autoscaler A/B needs identical outcome sets *)
}

val spec :
  ?tenants:int ->
  ?queries:int ->
  ?seed:int ->
  ?duration_s:float ->
  ?skew:float ->
  ?burstiness:float ->
  ?bursts:int ->
  ?deltas:int ->
  ?slo_gold_s:float ->
  ?slo_silver_s:float ->
  ?slo_bronze_s:float ->
  ?deadlines:bool ->
  unit ->
  spec
(** Defaults: 10_000 tenants, 400 queries, seed 1, 60 s horizon, skew 1.1,
    burstiness 0.7 across 4 bursts, 4 deltas, SLO targets 0.05 / 0.2 / 1.0
    s, no deadlines. *)

type t = {
  spec : spec;
  events : Service.event list;  (** submissions + deltas, arrival-ordered *)
  make_store : unit -> Rs_service.Edb_store.t;
      (** fresh store with the three size-class databases — build one per
          {!Service.run}, the run mutates it *)
  class_of : string -> slo_class;
      (** tenant name → class (tenants never drawn default to {!Bronze}) *)
  tenants_used : int;  (** distinct tenants that actually submitted *)
  class_population : (slo_class * int) list;
      (** distinct drawn tenants per class *)
}

val generate : spec -> t

val target_s : spec -> slo_class -> float

(** Per-class scorecard over one service run. *)
type class_stats = {
  cs_class : slo_class;
  cs_target_s : float;
  cs_tenants : int;  (** distinct tenants of the class that submitted *)
  cs_served : int;  (** Done completions, degraded included *)
  cs_degraded : int;  (** served below [Retry.Full] — inside [cs_served] *)
  cs_failed : int;  (** admitted but not served (oom/timeout/fault/...) *)
  cs_rejected : int;
  cs_within : int;  (** served within the class target *)
  cs_hist : Histogram.t;  (** latency distribution of every served result *)
}

val attainment : class_stats -> float
(** [cs_within / cs_served]; 1.0 when nothing was served. *)

val slo_stats : t -> Service.report -> class_stats list
(** Always three entries, Gold first. *)

val slo_json : t -> Service.report -> Json.t
(** The SLO report: spec echo, makespan/throughput, per-class targets with
    p50/p95/p99/p999 histograms and attainment, autoscaler counters, and
    the busiest tenants. *)

val slo_summary : t -> Service.report -> string
(** ASCII scorecard. *)
