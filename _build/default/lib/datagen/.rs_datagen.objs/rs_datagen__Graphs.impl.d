lib/datagen/graphs.ml: List Printf Rs_relation Rs_util
