lib/datagen/prog_analysis.ml: Hashtbl List Printf Rs_relation Rs_util
