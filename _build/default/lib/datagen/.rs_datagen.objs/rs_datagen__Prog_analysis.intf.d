lib/datagen/prog_analysis.mli: Rs_relation
