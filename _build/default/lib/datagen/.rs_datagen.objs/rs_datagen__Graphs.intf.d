lib/datagen/graphs.mli: Rs_relation
