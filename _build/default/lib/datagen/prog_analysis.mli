(** Program-analysis input generators (paper §6.2).

    The paper's Andersen inputs are seven synthetic datasets "generated based
    on the characteristics of a tiny real dataset" with a growing number of
    variables; the CSPA/CSDA inputs are the Graspan graphs extracted from
    linux, postgresql and httpd. We reproduce the statistical shape:

    - {!andersen}: C-like statement mix over [nvars] variables —
      address-of ([p = &x]), copy ([p = q]), load ([p = *q]) and store
      ([*p = q]) — with assignment locality (most copies are between nearby
      variables, as in real SSA form).
    - {!cspa_input}: [assign] edges with chain+random structure and
      [dereference] edges mapping pointer variables to abstract heap
      locations, per system-program profile.
    - {!csda_input}: a control-flow-graph-like [arc] (long chains with
      branches — the reason CSDA needs ~1000 iterations in the paper) and a
      sparse [nullEdge] seed set.

    Deterministic in [seed]. *)

module Relation = Rs_relation.Relation

val andersen :
  seed:int ->
  nvars:int ->
  (string * Relation.t) list
(** EDBs [addressOf], [assign], [load], [store]. *)

val andersen_dataset : seed:int -> scale:int -> int -> (string * Relation.t) list
(** [andersen_dataset n] for [n] in 1..7: the paper's seven sizes (number of
    variables grows geometrically with the dataset number). *)

val system_program_profiles : (string * (int * float)) list
(** [(name, (nvars_at_scale_1, density))] for linux, postgresql, httpd. *)

val cspa_input : seed:int -> scale:int -> string -> (string * Relation.t) list
(** EDBs [assign], [dereference] for a named system-program profile. *)

val csda_input : seed:int -> scale:int -> string -> (string * Relation.t) list
(** EDBs [nullEdge], [arc] for a named system-program profile. The [arc]
    CFG has depth proportional to the program size, forcing many semi-naive
    iterations. *)
