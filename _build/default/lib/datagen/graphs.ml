module Relation = Rs_relation.Relation
module Rng = Rs_util.Rng

let gnp ~seed ~n ~p =
  let rng = Rng.create seed in
  let r = Relation.create ~name:"arc" 2 in
  (* Geometric skipping: expected work O(n^2 p), not O(n^2). *)
  if p >= 1.0 then begin
    for x = 0 to n - 1 do
      for y = 0 to n - 1 do
        if x <> y then Relation.push2 r x y
      done
    done
  end
  else if p > 0.0 then begin
    let log1mp = log (1.0 -. p) in
    let total = n * n in
    let pos = ref (-1) in
    let continue_ = ref true in
    while !continue_ do
      let u = Rng.float rng 1.0 in
      let u = if u <= 0.0 then 1e-12 else u in
      let skip = 1 + int_of_float (log u /. log1mp) in
      pos := !pos + skip;
      if !pos >= total then continue_ := false
      else begin
        let x = !pos / n and y = !pos mod n in
        if x <> y then Relation.push2 r x y
      end
    done
  end;
  Relation.account r;
  r

let pow2_at_least n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let rmat ~seed ~n ~m =
  let rng = Rng.create seed in
  let n = pow2_at_least n in
  let bits =
    let rec lg k acc = if k <= 1 then acc else lg (k / 2) (acc + 1) in
    lg n 0
  in
  let r = Relation.create ~name:"arc" 2 in
  (* Standard RMAT quadrant probabilities a=0.45 b=0.22 c=0.22 d=0.11. *)
  for _ = 1 to m do
    let x = ref 0 and y = ref 0 in
    for _ = 1 to bits do
      let v = Rng.float rng 1.0 in
      let bx, by = if v < 0.45 then (0, 0) else if v < 0.67 then (0, 1) else if v < 0.89 then (1, 0) else (1, 1) in
      x := (!x lsl 1) lor bx;
      y := (!y lsl 1) lor by
    done;
    if !x <> !y then Relation.push2 r !x !y
  done;
  Relation.account r;
  r

let rmat_skewed ~seed ~n ~m ~a =
  let rng = Rng.create seed in
  let n = pow2_at_least n in
  let bits =
    let rec lg k acc = if k <= 1 then acc else lg (k / 2) (acc + 1) in
    lg n 0
  in
  let rest = (1.0 -. a) /. 3.0 in
  let b = a +. rest and c = a +. (2.0 *. rest) in
  let r = Relation.create ~name:"arc" 2 in
  for _ = 1 to m do
    let x = ref 0 and y = ref 0 in
    for _ = 1 to bits do
      let v = Rng.float rng 1.0 in
      let bx, by = if v < a then (0, 0) else if v < b then (0, 1) else if v < c then (1, 0) else (1, 1) in
      x := (!x lsl 1) lor bx;
      y := (!y lsl 1) lor by
    done;
    if !x <> !y then Relation.push2 r !x !y
  done;
  Relation.account r;
  r

(* Scaled-down stand-ins for the paper's real-world graphs: (n, m, skew) at
   scale 1. livejournal/orkut are denser and moderately skewed; arabic (web
   crawl) and twitter are larger and highly skewed. *)
let real_world_profiles =
  [
    ("livejournal", (1 lsl 13, 8 * (1 lsl 13), 0.45));
    ("orkut", (1 lsl 13, 12 * (1 lsl 13), 0.45));
    ("arabic", (1 lsl 14, 12 * (1 lsl 14), 0.57));
    ("twitter", (1 lsl 15, 12 * (1 lsl 15), 0.6));
  ]

let real_world_like ~seed ~scale name =
  match List.assoc_opt name real_world_profiles with
  | None -> invalid_arg (Printf.sprintf "unknown real-world preset %s" name)
  | Some (n, m, a) -> rmat_skewed ~seed ~n:(n * scale) ~m:(m * scale) ~a

let add_weights ~seed ~max_weight rel =
  let rng = Rng.create seed in
  let out = Relation.create ~name:(Relation.name rel) 3 in
  for row = 0 to Relation.nrows rel - 1 do
    Relation.push3 out
      (Relation.get rel ~row ~col:0)
      (Relation.get rel ~row ~col:1)
      (1 + Rng.int rng max_weight)
  done;
  Relation.account out;
  out

let random_sources ~seed ~n ~count =
  let rng = Rng.create seed in
  List.init count (fun _ ->
      let r = Relation.create ~name:"id" 1 in
      Relation.push1 r (Rng.int rng n);
      r)

let vertex_count rel =
  let hi = ref 0 in
  for row = 0 to Relation.nrows rel - 1 do
    let x = Relation.get rel ~row ~col:0 and y = Relation.get rel ~row ~col:1 in
    if x >= !hi then hi := x + 1;
    if y >= !hi then hi := y + 1
  done;
  !hi
