module Relation = Rs_relation.Relation
module Rng = Rs_util.Rng

(* Pick a "nearby" variable. Variables are grouped into function-like
   blocks; references stay inside the block except for rare call edges.
   Without this modularity the assign graph becomes one long chain and the
   points-to closure goes quadratic in the program size — real inputs grow
   roughly linearly (paper Figure 9b). *)
let block_size = 96

let nearby rng nvars v =
  let base = v / block_size * block_size in
  let w = base + Rng.int rng block_size in
  if w >= nvars then v else w

let andersen ~seed ~nvars =
  let rng = Rng.create seed in
  let address_of = Relation.create ~name:"addressOf" 2 in
  let assign = Relation.create ~name:"assign" 2 in
  let load = Relation.create ~name:"load" 2 in
  let store = Relation.create ~name:"store" 2 in
  (* Statement mix loosely following whole-program C points-to inputs:
     ~15% address-of, ~65% copies, ~12% loads, ~8% stores. Address-of
     targets come from nearby variables (allocation sites have locality in
     SSA form); uniform targets would make every alias set O(n) and the
     closure quadratic, which real programs do not exhibit. *)
  let nstmts = 3 * nvars in
  for _ = 1 to nstmts do
    let v = Rng.int rng nvars in
    let roll = Rng.float rng 1.0 in
    if roll < 0.15 then Relation.push2 address_of v (nearby rng nvars v)
    else if roll < 0.80 then Relation.push2 assign v (nearby rng nvars v)
    else if roll < 0.92 then Relation.push2 load v (nearby rng nvars v)
    else Relation.push2 store v (nearby rng nvars v)
  done;
  List.iter Relation.account [ address_of; assign; load; store ];
  [ ("addressOf", address_of); ("assign", assign); ("load", load); ("store", store) ]

let andersen_dataset ~seed ~scale n =
  if n < 1 || n > 7 then invalid_arg "andersen_dataset: n must be in 1..7";
  (* Linear growth in the number of variables, dataset 1 smallest. *)
  let nvars = scale * 768 * n in
  andersen ~seed:(seed + n) ~nvars

(* (variables at scale 1, extra random-assign density). linux is by far the
   largest in the paper; httpd the smallest. *)
let system_program_profiles =
  [ ("linux", (6000, 0.35)); ("postgresql", (3500, 0.30)); ("httpd", (1500, 0.25)) ]

let profile name =
  match List.assoc_opt name system_program_profiles with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "unknown system program %s" name)

let cspa_input ~seed ~scale name =
  let nvars0, density = profile name in
  let nvars = nvars0 * scale in
  let rng = Rng.create (seed lxor Hashtbl.hash name) in
  let assign = Relation.create ~name:"assign" 2 in
  let deref = Relation.create ~name:"dereference" 2 in
  (* Chains of copies (def-use chains) plus cross assignments. *)
  for v = 0 to nvars - 2 do
    if Rng.bool rng 0.5 then Relation.push2 assign (v + 1) v
  done;
  let extra = int_of_float (float_of_int nvars *. density) in
  for _ = 1 to extra do
    let a = Rng.int rng nvars in
    Relation.push2 assign a (nearby rng nvars a)
  done;
  (* Pointer variables dereference abstract locations; aliasing arises when
     two pointers dereference to the same location. *)
  let nlocs = max 8 (nvars / 8) in
  for _ = 1 to nvars / 3 do
    let p = Rng.int rng nvars in
    Relation.push2 deref p (nvars + Rng.int rng nlocs)
  done;
  List.iter Relation.account [ assign; deref ];
  [ ("assign", assign); ("dereference", deref) ]

let csda_input ~seed ~scale name =
  let nvars0, density = profile name in
  let n = nvars0 * scale * 2 in
  let rng = Rng.create (seed lxor Hashtbl.hash name lxor 0x5ca1ab1e) in
  let arc = Relation.create ~name:"arc" 2 in
  let null_edge = Relation.create ~name:"nullEdge" 2 in
  (* CFG shape: long straight-line chains with occasional forward branches
     and join points — depth O(n) drives the ~1000-iteration behaviour. *)
  for v = 0 to n - 2 do
    if Rng.bool rng 0.97 then Relation.push2 arc v (v + 1);
    if Rng.bool rng density then begin
      let target = min (n - 1) (v + 2 + Rng.int rng 16) in
      Relation.push2 arc v target
    end
  done;
  for _ = 1 to max 1 (n / 200) do
    let s = Rng.int rng (max 1 (n / 2)) in
    Relation.push2 null_edge s (s + 1)
  done;
  List.iter Relation.account [ arc; null_edge ];
  [ ("nullEdge", null_edge); ("arc", arc) ]
