(** Graph dataset generators (paper §6.2).

    - {!gnp}: the Gn-p family ("GTgraph"): every ordered pair connected with
      probability [p] (the paper's default [p = 0.001]); dense relative to
      the small vertex count, the regime where PBME matters.
    - {!rmat}: RMAT-n graphs with [10 n] directed edges and the standard
      (0.45, 0.22, 0.22, 0.11) partition probabilities, giving the skewed
      degree distributions of the paper's scalability sweeps.
    - {!real_world_like}: named presets standing in for livejournal, orkut,
      arabic and twitter — RMAT profiles with each graph's density and skew,
      scaled down by the harness's scale factor.

    All generators are deterministic in [seed]. *)

module Relation = Rs_relation.Relation

val gnp : seed:int -> n:int -> p:float -> Relation.t
(** Binary [arc] relation; self-loops excluded. *)

val rmat : seed:int -> n:int -> m:int -> Relation.t
(** [n] is rounded up to a power of two internally; vertex ids are in
    [\[0, n)]; duplicate edges are kept (the raw generator output). *)

val real_world_profiles : (string * (int * int * float)) list
(** [(name, (n, m, skew))] at scale 1: vertices, edges, RMAT skew (the [a]
    parameter; higher = more skewed). *)

val real_world_like : seed:int -> scale:int -> string -> Relation.t
(** Instantiate a preset at a scale factor. Unknown names raise
    [Invalid_argument]. *)

val add_weights : seed:int -> max_weight:int -> Relation.t -> Relation.t
(** Ternary weighted copy [(x, y, d)], [1 <= d <= max_weight] (for SSSP). *)

val random_sources : seed:int -> n:int -> count:int -> Relation.t list
(** [count] singleton unary [id] relations over [\[0, n)] — the ten random
    source vertices REACH and SSSP average over. *)

val vertex_count : Relation.t -> int
(** 1 + max endpoint (active-domain bound used for PBME and baselines). *)
