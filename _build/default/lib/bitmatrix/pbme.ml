module Pool = Rs_parallel.Pool
module Int_vec = Rs_util.Int_vec
module Int_key = Rs_util.Int_key

let tc pool ~n ~arc =
  let adj = Adjacency.build n arc in
  let m = Bitmatrix.of_relation n arc in
  (* Row [i]'s saturation touches only row [i]: workers need no
     coordination. Each subrange of rows is one pool task. *)
  Pool.parallel_for pool 0 n (fun lo hi ->
      let work = Int_vec.create () in
      for i = lo to hi - 1 do
        Int_vec.clear work;
        Rs_util.Bitset.iter (fun u -> Int_vec.push work u) (Bitmatrix.row m i);
        let cursor = ref 0 in
        while !cursor < Int_vec.length work do
          let t = Int_vec.get work !cursor in
          incr cursor;
          Adjacency.iter_succ adj t (fun j ->
              if Bitmatrix.test_and_set m i j then Int_vec.push work j)
        done
      done);
  Adjacency.release adj;
  m

(* Initial Msg = π(arc ⋈ arc on sources), x ≠ y; returns the seeded matrix. *)
let sg_init pool ~n ~adj =
  let m = Bitmatrix.create n in
  Pool.parallel_for pool 0 n (fun lo hi ->
      for p = lo to hi - 1 do
        Adjacency.iter_succ adj p (fun x ->
            Adjacency.iter_succ adj p (fun y -> if x <> y then Bitmatrix.set m x y))
      done);
  m

let sg_expand adj m a b push =
  Adjacency.iter_succ adj a (fun q ->
      Adjacency.iter_succ adj b (fun p ->
          if Bitmatrix.test_and_set m q p then push q p))

(* Zero-coordination: worker [w] owns rows [i ≡ w (mod k)] and chases every
   delta its rows spawn, wherever those bits land (Algorithm 3) — no work
   ever moves between workers, so skewed cascades skew worker loads (the
   effect Figure 7 shows). Execution is time-sliced into rounds of at most
   [quantum] expansions per worker so that the virtual-time pool observes
   the concurrent interleaving rather than one worker's depth-first
   saturation. *)
let sg_uncoordinated pool ~n ~adj m =
  let k = Pool.workers pool in
  let quantum = 2048 in
  let worklists = Array.init k (fun _ -> Int_vec.create ()) in
  let cursors = Array.make k 0 in
  for i = 0 to n - 1 do
    let w = i mod k in
    Rs_util.Bitset.iter
      (fun u -> Int_vec.push worklists.(w) (Int_key.pack2 i u))
      (Bitmatrix.row m i)
  done;
  let remaining w = Int_vec.length worklists.(w) - cursors.(w) in
  let any_left () =
    let rec go w = w < k && (remaining w > 0 || go (w + 1)) in
    go 0
  in
  while any_left () do
    let tasks =
      List.init k (fun w ->
          fun () ->
            let work = worklists.(w) in
            let budget = ref quantum in
            let push a b = Int_vec.push work (Int_key.pack2 a b) in
            while !budget > 0 && cursors.(w) < Int_vec.length work do
              let key = Int_vec.get work cursors.(w) in
              cursors.(w) <- cursors.(w) + 1;
              decr budget;
              let a, b = Int_key.unpack2 key in
              sg_expand adj m a b push
            done)
    in
    ignore (Pool.map_tasks pool tasks)
  done

(* Coordinated: deltas above the threshold are packed into work orders and
   drained from a global pool each round, at a small messaging overhead per
   order. *)
let sg_coordinated pool ~threshold ~n ~adj m =
  let order_overhead_s = 10e-6 in
  let frontier = ref (Int_vec.create ()) in
  for i = 0 to n - 1 do
    Rs_util.Bitset.iter (fun u -> Int_vec.push !frontier (Int_key.pack2 i u)) (Bitmatrix.row m i)
  done;
  while Int_vec.length !frontier > 0 do
    let current = !frontier in
    let next = Int_vec.create () in
    frontier := next;
    let len = Int_vec.length current in
    let orders = (len + threshold - 1) / threshold in
    Pool.add_serial pool (float_of_int orders *. order_overhead_s);
    (* idle workers grab work orders: parallelism = number of orders *)
    Pool.parallel_for pool ~chunks:orders 0 len (fun lo hi ->
        for idx = lo to hi - 1 do
          let a, b = Int_key.unpack2 (Int_vec.get current idx) in
          sg_expand adj m a b (fun q p -> Int_vec.push next (Int_key.pack2 q p))
        done)
  done

let sg ?(coordinated = false) ?(rebalance_threshold = 512) pool ~n ~arc =
  let adj = Adjacency.build n arc in
  let m = sg_init pool ~n ~adj in
  if coordinated then sg_coordinated pool ~threshold:rebalance_threshold ~n ~adj m
  else sg_uncoordinated pool ~n ~adj m;
  Adjacency.release adj;
  m
