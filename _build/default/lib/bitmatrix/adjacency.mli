(** Forward adjacency index over a binary EDB relation.

    The vector index [Varc] of Algorithm 3: [Varc(x) = { y | arc(x, y) }],
    stored as CSR-style flat arrays. *)

type t

val build : int -> Rs_relation.Relation.t -> t
(** [build n arc] indexes the binary relation [arc] over domain
    [\[0, n)]. *)

val n : t -> int

val degree : t -> int -> int

val iter_succ : t -> int -> (int -> unit) -> unit
(** [iter_succ t x f] calls [f y] for each edge [(x, y)] (duplicates
    preserved as stored). *)

val fold_succ : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val release : t -> unit
