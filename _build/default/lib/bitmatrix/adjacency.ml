module Relation = Rs_relation.Relation
module Int_vec = Rs_util.Int_vec
module Memtrack = Rs_storage.Memtrack

type t = { offsets : int array; targets : int array; n : int; mutable accounted : int }

let build n rel =
  let m = Relation.nrows rel in
  let c0 = Relation.col rel 0 and c1 = Relation.col rel 1 in
  let counts = Array.make (n + 1) 0 in
  for row = 0 to m - 1 do
    let x = Int_vec.get c0 row in
    counts.(x + 1) <- counts.(x + 1) + 1
  done;
  for i = 1 to n do
    counts.(i) <- counts.(i) + counts.(i - 1)
  done;
  let offsets = Array.copy counts in
  let targets = Array.make m 0 in
  let cursor = Array.copy offsets in
  for row = 0 to m - 1 do
    let x = Int_vec.get c0 row and y = Int_vec.get c1 row in
    targets.(cursor.(x)) <- y;
    cursor.(x) <- cursor.(x) + 1
  done;
  let accounted = 8 * (Array.length offsets + Array.length targets) in
  Memtrack.alloc accounted;
  { offsets; targets; n; accounted }

let n t = t.n

let degree t x = t.offsets.(x + 1) - t.offsets.(x)

let iter_succ t x f =
  for i = t.offsets.(x) to t.offsets.(x + 1) - 1 do
    f t.targets.(i)
  done

let fold_succ t x f acc =
  let acc = ref acc in
  iter_succ t x (fun y -> acc := f !acc y);
  !acc

let release t =
  Memtrack.free t.accounted;
  t.accounted <- 0
