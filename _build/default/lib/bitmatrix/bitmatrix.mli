(** The bit-matrix data structure of PBME (paper §5.3).

    A binary IDB over active domain [{0..n-1}] is stored as an [n × n] bit
    matrix instead of a tuple set: tuple [(a, b)] is bit [\[a, b\]]. Recursion
    only ever turns bits on (Datalog is monotone), joins and deduplication
    fuse into a single bit-test-and-set, and memory is [n²/8] bytes
    regardless of how dense the result gets — the whole point of the
    technique on dense graphs. *)

type t

val create : int -> t
(** [create n] is the all-zero [n × n] matrix. Accounts [n²/8] bytes to
    {!Rs_storage.Memtrack} (may raise [Simulated_oom], which the engine
    reports as the paper reports QuickStep's OOM). *)

val n : t -> int

val get : t -> int -> int -> bool

val set : t -> int -> int -> unit

val test_and_set : t -> int -> int -> bool
(** [true] iff the bit was previously clear — the fused join+dedup step. *)

val row : t -> int -> Rs_util.Bitset.t
(** The row bitset (shared, mutable). *)

val cardinal : t -> int
(** Number of set bits (result size). *)

val required_bytes : int -> int
(** Bytes {!create} would account for a given [n] — the interpreter's
    "does the bit matrix fit in memory" check before choosing PBME. *)

val to_relation : ?name:string -> t -> Rs_relation.Relation.t
(** Materializes the set bits as a binary relation (row-major order). *)

val of_relation : int -> Rs_relation.Relation.t -> t
(** [of_relation n r] sets bit [(x, y)] for every tuple of the binary
    relation [r]. *)

val release : t -> unit
