lib/bitmatrix/pbme.ml: Adjacency Array Bitmatrix List Rs_parallel Rs_util
