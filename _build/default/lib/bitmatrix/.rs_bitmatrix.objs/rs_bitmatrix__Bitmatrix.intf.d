lib/bitmatrix/bitmatrix.mli: Rs_relation Rs_util
