lib/bitmatrix/pbme.mli: Bitmatrix Rs_parallel Rs_relation
