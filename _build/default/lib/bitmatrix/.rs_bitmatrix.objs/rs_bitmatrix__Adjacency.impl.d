lib/bitmatrix/adjacency.ml: Array Rs_relation Rs_storage Rs_util
