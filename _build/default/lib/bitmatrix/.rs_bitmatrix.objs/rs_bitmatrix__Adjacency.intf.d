lib/bitmatrix/adjacency.mli: Rs_relation
