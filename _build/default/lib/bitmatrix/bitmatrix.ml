module Bitset = Rs_util.Bitset
module Memtrack = Rs_storage.Memtrack

type t = { rows : Bitset.t array; n : int; mutable accounted : int }

let required_bytes n = ((n + 62) / 63) * 8 * n

let create n =
  let bytes = required_bytes n in
  Memtrack.alloc bytes;
  { rows = Array.init n (fun _ -> Bitset.create n); n; accounted = bytes }

let n t = t.n
let get t i j = Bitset.mem t.rows.(i) j
let set t i j = Bitset.add t.rows.(i) j
let test_and_set t i j = Bitset.test_and_set t.rows.(i) j
let row t i = t.rows.(i)

let cardinal t = Array.fold_left (fun acc r -> acc + Bitset.cardinal r) 0 t.rows

let to_relation ?(name = "_bitmatrix") t =
  (* Pre-size the columns exactly: the doubling growth of push-based
     appends would transiently need ~2x the result's memory, defeating the
     bit matrix's whole purpose on the largest graphs. *)
  let total = cardinal t in
  let r = Rs_relation.Relation.create_sized ~name 2 total in
  let c0 = Rs_relation.Relation.col r 0 and c1 = Rs_relation.Relation.col r 1 in
  let pos = ref 0 in
  for i = 0 to t.n - 1 do
    Bitset.iter
      (fun j ->
        Rs_util.Int_vec.set c0 !pos i;
        Rs_util.Int_vec.set c1 !pos j;
        incr pos)
      t.rows.(i)
  done;
  Rs_relation.Relation.account r;
  r

let of_relation n rel =
  let t = create n in
  let c0 = Rs_relation.Relation.col rel 0 and c1 = Rs_relation.Relation.col rel 1 in
  for row = 0 to Rs_relation.Relation.nrows rel - 1 do
    set t (Rs_util.Int_vec.get c0 row) (Rs_util.Int_vec.get c1 row)
  done;
  t

let release t =
  Memtrack.free t.accounted;
  t.accounted <- 0
