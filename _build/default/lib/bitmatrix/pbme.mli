(** Parallel Bit-Matrix Evaluation kernels (paper Algorithms 2 and 3).

    Specialized evaluation for the two dense-graph programs the paper
    accelerates: transitive closure and same generation. Joins and
    deduplication fuse into bit operations on the IDB's bit matrix; worker
    threads own row partitions with zero coordination (TC, SG), and SG also
    has the experimental coordinated variant of Figure 7 that re-balances
    oversized deltas through a global work pool. *)

val tc :
  Rs_parallel.Pool.t -> n:int -> arc:Rs_relation.Relation.t -> Bitmatrix.t
(** Algorithm 2: [tc(x,y) :- arc(x,y). tc(x,y) :- tc(x,z), arc(z,y).]
    Each worker saturates its own rows; a row's frontier only ever writes
    into that row, hence zero coordination. *)

val sg :
  ?coordinated:bool ->
  ?rebalance_threshold:int ->
  Rs_parallel.Pool.t ->
  n:int ->
  arc:Rs_relation.Relation.t ->
  Bitmatrix.t
(** Algorithm 3: [sg(x,y) :- arc(p,x), arc(p,y), x != y.]
    [sg(x,y) :- arc(a,x), sg(a,b), arc(b,y).]

    [coordinated = false] (default) is the zero-coordination variant: each
    worker keeps chasing the deltas produced from its initial row partition,
    so skewed partitions leave workers idle. [coordinated = true] packs a
    worker's delta into global work orders once it exceeds
    [rebalance_threshold] (default 4096 pairs), letting idle workers steal —
    at a small per-order messaging overhead. *)
