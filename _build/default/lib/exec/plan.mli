module Relation = Rs_relation.Relation
module Hash_index = Rs_relation.Hash_index
(** Logical query plans.

    The Datalog query generator emits these plans instead of SQL text; they
    play the role of the SQL queries RecStep issues to QuickStep. A rule
    body becomes a left-deep chain of {!constructor-Join}s with the head's
    projection embedded in the top join ([out]), negated atoms become
    {!constructor-AntiJoin}s, aggregation heads become {!constructor-Aggregate}s,
    and UIE groups the per-rule plans of one IDB under a single
    {!constructor-UnionAll}. *)

type agg_op = Min | Max | Sum | Count | Avg

type t =
  | Scan of string  (** named table in the catalog *)
  | Rel of Relation.t  (** anonymous materialized input *)
  | Filter of Expr.pred list * t
  | Project of Expr.t array * t
  | Join of join
  | AntiJoin of anti  (** rows of [l] with no key-match in [r] *)
  | UnionAll of t list
  | Aggregate of agg

and join = {
  l : t;
  r : t;
  lkeys : int array;
  rkeys : int array;
  extra : Expr.pred list;  (** residual predicates on the concatenated row *)
  out : Expr.t array option;  (** projection on the concatenated row *)
}

and anti = { al : t; ar : t; alkeys : int array; arkeys : int array }

and agg = { group : Expr.t array; aggs : (agg_op * Expr.t) array; src : t }

val arity : (string -> int) -> t -> int
(** [arity lookup p] is the output arity, where [lookup] gives the arity of
    named tables. *)

val estimate : (string -> int) -> t -> int
(** Cardinality estimate from (possibly stale) catalog row counts — the
    optimizer input that OOF keeps fresh. *)

val to_string : t -> string
(** Multi-line plan rendering, for logging and tests. *)

val join2 : ?extra:Expr.pred list -> ?out:Expr.t array -> t -> int array -> t -> int array -> t
(** [join2 l lkeys r rkeys] is a convenience constructor. *)
