lib/exec/plan.mli: Expr Rs_relation
