lib/exec/cost.ml: Array List Rs_relation Rs_util
