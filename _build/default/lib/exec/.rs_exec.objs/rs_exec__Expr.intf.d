lib/exec/expr.mli:
