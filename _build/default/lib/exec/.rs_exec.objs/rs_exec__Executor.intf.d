lib/exec/executor.mli: Catalog Plan Rs_parallel Rs_relation
