lib/exec/cost.mli: Rs_parallel
