lib/exec/catalog.ml: Array Hashtbl Printf Rs_parallel Rs_relation Rs_util
