lib/exec/executor.ml: Array Catalog Expr Hashtbl List Plan Rs_parallel Rs_relation Rs_util
