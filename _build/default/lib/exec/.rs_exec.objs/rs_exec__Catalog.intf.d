lib/exec/catalog.mli: Rs_parallel Rs_relation
