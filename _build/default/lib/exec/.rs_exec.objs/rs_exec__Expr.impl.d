lib/exec/expr.ml: Printf
