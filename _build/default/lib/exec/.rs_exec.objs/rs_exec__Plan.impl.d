lib/exec/plan.ml: Array Buffer Expr List Printf Rs_relation String
