module Relation = Rs_relation.Relation
module Hash_index = Rs_relation.Hash_index
type full_stats = {
  col_min : int array;
  col_max : int array;
  col_sum : int array;
  distinct_estimate : int;
}

type entry = {
  mutable rel : Relation.t;
  mutable stat_rows : int;
  mutable full : full_stats option;
}

type t = (string, entry) Hashtbl.t

let create () = Hashtbl.create 64

let register t name rel =
  Hashtbl.replace t name { rel; stat_rows = Relation.nrows rel; full = None }

let find t name =
  match Hashtbl.find_opt t name with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Catalog: unknown table %S" name)

let replace_rel t name rel = (find t name).rel <- rel

let rel t name = (find t name).rel

let mem t name = Hashtbl.mem t name

let drop t name =
  match Hashtbl.find_opt t name with
  | Some e ->
      Relation.release e.rel;
      Hashtbl.remove t name
  | None -> ()

let analyze_rows t name =
  let e = find t name in
  e.stat_rows <- Relation.nrows e.rel

let analyze_full t pool name =
  let e = find t name in
  let r = e.rel in
  let arity = Relation.arity r and n = Relation.nrows r in
  let col_min = Array.make arity max_int
  and col_max = Array.make arity min_int
  and col_sum = Array.make arity 0 in
  let distinct = ref 0 in
  (* One real scan per column, chunked through the pool like any other
     backend operator. A cheap linear-probing sketch approximates the
     distinct count of the first column. *)
  Rs_parallel.Pool.parallel_for pool 0 n (fun lo hi ->
      for row = lo to hi - 1 do
        for c = 0 to arity - 1 do
          let v = Relation.get r ~row ~col:c in
          if v < col_min.(c) then col_min.(c) <- v;
          if v > col_max.(c) then col_max.(c) <- v;
          col_sum.(c) <- col_sum.(c) + v
        done
      done);
  if n > 0 then begin
    let sketch = Array.make 1024 (-1) in
    let seen = ref 0 in
    for row = 0 to min (n - 1) 4095 do
      let v = Relation.get r ~row ~col:0 in
      let h = Rs_util.Int_key.hash v land 1023 in
      if sketch.(h) <> v then begin
        sketch.(h) <- v;
        incr seen
      end
    done;
    distinct := max 1 (!seen * n / min n 4096)
  end;
  e.stat_rows <- n;
  e.full <- Some { col_min; col_max; col_sum; distinct_estimate = !distinct }

let stat_rows t name = (find t name).stat_rows

let names t = Hashtbl.fold (fun k _ acc -> k :: acc) t []
