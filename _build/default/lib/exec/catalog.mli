module Relation = Rs_relation.Relation
module Hash_index = Rs_relation.Hash_index
(** Table catalog with statistics (the backend's [analyze] target).

    The paper's OOF optimization hinges on *which* statistics are collected
    *when*: RecStep re-collects only the cheap statistics the optimizer will
    actually consult (row counts before joins; value bounds before
    aggregations), at every iteration. The ablations are: OOF-NA — never
    refresh, so the optimizer plans against stale counts; OOF-FA — refresh
    the full statistics set (a real extra scan per table per iteration). *)

type full_stats = {
  col_min : int array;
  col_max : int array;
  col_sum : int array;
  distinct_estimate : int;
}

type entry = {
  mutable rel : Relation.t;
  mutable stat_rows : int;  (** row count as last analyzed (may be stale) *)
  mutable full : full_stats option;
}

type t

val create : unit -> t

val register : t -> string -> Relation.t -> unit
(** Registers (or replaces) a table and records its initial row count. *)

val replace_rel : t -> string -> Relation.t -> unit
(** Swap the relation behind a name without refreshing statistics (the
    stale-stats code path for the OOF-NA ablation). *)

val find : t -> string -> entry

val rel : t -> string -> Relation.t

val mem : t -> string -> bool

val drop : t -> string -> unit
(** Removes the table and releases its memory accounting. *)

val analyze_rows : t -> string -> unit
(** Refresh the row-count statistic (O(1), what OOF collects for joins). *)

val analyze_full : t -> Rs_parallel.Pool.t -> string -> unit
(** Collect the full statistics set with a real parallel scan (what the
    OOF-FA ablation pays for every updated table). *)

val stat_rows : t -> string -> int

val names : t -> string list
