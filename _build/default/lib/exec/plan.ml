module Relation = Rs_relation.Relation
module Hash_index = Rs_relation.Hash_index
type agg_op = Min | Max | Sum | Count | Avg

type t =
  | Scan of string
  | Rel of Relation.t
  | Filter of Expr.pred list * t
  | Project of Expr.t array * t
  | Join of join
  | AntiJoin of anti
  | UnionAll of t list
  | Aggregate of agg

and join = {
  l : t;
  r : t;
  lkeys : int array;
  rkeys : int array;
  extra : Expr.pred list;
  out : Expr.t array option;
}

and anti = { al : t; ar : t; alkeys : int array; arkeys : int array }

and agg = { group : Expr.t array; aggs : (agg_op * Expr.t) array; src : t }

let rec arity lookup = function
  | Scan name -> lookup name
  | Rel r -> Relation.arity r
  | Filter (_, p) -> arity lookup p
  | Project (exprs, _) -> Array.length exprs
  | Join { l; r; out; _ } -> (
      match out with
      | Some exprs -> Array.length exprs
      | None -> arity lookup l + arity lookup r)
  | AntiJoin { al; _ } -> arity lookup al
  | UnionAll [] -> invalid_arg "Plan.arity: empty UnionAll"
  | UnionAll (p :: _) -> arity lookup p
  | Aggregate { group; aggs; _ } -> Array.length group + Array.length aggs

let rec estimate rows = function
  | Scan name -> rows name
  | Rel r -> Relation.nrows r
  | Filter (_, p) -> (estimate rows p / 3) + 1
  | Project (_, p) -> estimate rows p
  | Join { l; r; _ } -> max (estimate rows l) (estimate rows r)
  | AntiJoin { al; _ } -> estimate rows al
  | UnionAll ps -> List.fold_left (fun acc p -> acc + estimate rows p) 0 ps
  | Aggregate { src; _ } -> (estimate rows src / 2) + 1

let agg_op_to_string = function
  | Min -> "MIN" | Max -> "MAX" | Sum -> "SUM" | Count -> "COUNT" | Avg -> "AVG"

let to_string p =
  let buf = Buffer.create 256 in
  let pad d = String.make (2 * d) ' ' in
  let keys ks = String.concat "," (Array.to_list (Array.map string_of_int ks)) in
  let rec go d = function
    | Scan name -> Buffer.add_string buf (Printf.sprintf "%sScan %s\n" (pad d) name)
    | Rel r ->
        Buffer.add_string buf
          (Printf.sprintf "%sRel %s(%d rows)\n" (pad d) (Relation.name r) (Relation.nrows r))
    | Filter (preds, p) ->
        Buffer.add_string buf
          (Printf.sprintf "%sFilter [%s]\n" (pad d)
             (String.concat "; " (List.map Expr.pred_to_string preds)));
        go (d + 1) p
    | Project (exprs, p) ->
        Buffer.add_string buf
          (Printf.sprintf "%sProject [%s]\n" (pad d)
             (String.concat "; " (Array.to_list (Array.map Expr.to_string exprs))));
        go (d + 1) p
    | Join { l; r; lkeys; rkeys; extra; out } ->
        Buffer.add_string buf
          (Printf.sprintf "%sJoin l[%s]=r[%s]%s%s\n" (pad d) (keys lkeys) (keys rkeys)
             (match extra with
             | [] -> ""
             | ps -> " where " ^ String.concat " and " (List.map Expr.pred_to_string ps))
             (match out with
             | None -> ""
             | Some exprs ->
                 " -> [" ^ String.concat "; " (Array.to_list (Array.map Expr.to_string exprs)) ^ "]"));
        go (d + 1) l;
        go (d + 1) r
    | AntiJoin { al; ar; alkeys; arkeys } ->
        Buffer.add_string buf
          (Printf.sprintf "%sAntiJoin l[%s] not in r[%s]\n" (pad d) (keys alkeys) (keys arkeys));
        go (d + 1) al;
        go (d + 1) ar
    | UnionAll ps ->
        Buffer.add_string buf (Printf.sprintf "%sUnionAll\n" (pad d));
        List.iter (go (d + 1)) ps
    | Aggregate { group; aggs; src } ->
        Buffer.add_string buf
          (Printf.sprintf "%sAggregate group=[%s] aggs=[%s]\n" (pad d)
             (String.concat "; " (Array.to_list (Array.map Expr.to_string group)))
             (String.concat "; "
                (Array.to_list
                   (Array.map
                      (fun (op, e) -> agg_op_to_string op ^ "(" ^ Expr.to_string e ^ ")")
                      aggs))));
        go (d + 1) src
  in
  go 0 p;
  Buffer.contents buf

let join2 ?(extra = []) ?out l lkeys r rkeys = Join { l; r; lkeys; rkeys; extra; out }
