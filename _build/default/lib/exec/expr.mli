(** Scalar expressions and predicates over relation rows.

    The query generator compiles Datalog terms (variables, constants,
    arithmetic in aggregate arguments, comparison atoms) into these
    expressions; the executor evaluates them against a column accessor. *)

type t =
  | Col of int  (** column of the operator's input schema *)
  | Const of int
  | Add of t * t
  | Sub of t * t
  | Mul of t * t

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type pred = Cmp of cmp * t * t

val eval : (int -> int) -> t -> int
(** [eval get e] evaluates [e] where [get c] reads column [c]. *)

val test : (int -> int) -> pred -> bool

val cols : t -> int list
(** Columns referenced by the expression. *)

val pred_cols : pred -> int list

val shift : int -> t -> t
(** [shift k e] adds [k] to every column index (for re-basing expressions
    onto a concatenated join schema). *)

val shift_pred : int -> pred -> pred

val to_string : t -> string

val pred_to_string : pred -> string
