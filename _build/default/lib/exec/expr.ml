type t =
  | Col of int
  | Const of int
  | Add of t * t
  | Sub of t * t
  | Mul of t * t

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type pred = Cmp of cmp * t * t

let rec eval get = function
  | Col c -> get c
  | Const k -> k
  | Add (a, b) -> eval get a + eval get b
  | Sub (a, b) -> eval get a - eval get b
  | Mul (a, b) -> eval get a * eval get b

let test get (Cmp (op, a, b)) =
  let x = eval get a and y = eval get b in
  match op with
  | Eq -> x = y
  | Ne -> x <> y
  | Lt -> x < y
  | Le -> x <= y
  | Gt -> x > y
  | Ge -> x >= y

let rec cols = function
  | Col c -> [ c ]
  | Const _ -> []
  | Add (a, b) | Sub (a, b) | Mul (a, b) -> cols a @ cols b

let pred_cols (Cmp (_, a, b)) = cols a @ cols b

let rec shift k = function
  | Col c -> Col (c + k)
  | Const x -> Const x
  | Add (a, b) -> Add (shift k a, shift k b)
  | Sub (a, b) -> Sub (shift k a, shift k b)
  | Mul (a, b) -> Mul (shift k a, shift k b)

let shift_pred k (Cmp (op, a, b)) = Cmp (op, shift k a, shift k b)

let rec to_string = function
  | Col c -> Printf.sprintf "$%d" c
  | Const k -> string_of_int k
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (to_string a) (to_string b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (to_string a) (to_string b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (to_string a) (to_string b)

let cmp_to_string = function
  | Eq -> "=" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let pred_to_string (Cmp (op, a, b)) =
  Printf.sprintf "%s %s %s" (to_string a) (cmp_to_string op) (to_string b)
