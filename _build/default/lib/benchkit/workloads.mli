(** Workload catalog: (program, inputs) pairs mirroring the paper's Table 3,
    at container scale. Deterministic: the same workload name always builds
    identical inputs, so every engine measures the same data. *)

module Relation = Rs_relation.Relation

type t = {
  label : string;  (** e.g. "TC/G400" *)
  program : Recstep.Ast.program;
  make_edb : unit -> (string * Relation.t) list;
  output : string;  (** relation whose size sanity-checks the run *)
}

val gn_series : scale:int -> (string * (unit -> Relation.t)) list
(** The Gn-p family standing in for G5K..G80K: name and arc builder, in
    increasing size order (two dense variants in the middle, as in the
    paper). *)

val rmat_series : scale:int -> points:int -> (string * (unit -> Relation.t)) list
(** RMAT graphs of doubling vertex counts (the paper's 1M..128M sweep). *)

val real_world : scale:int -> (string * (unit -> Relation.t)) list

val tc : string * (unit -> Relation.t) -> t

val sg : string * (unit -> Relation.t) -> t

val reach : ?source_seed:int -> string * (unit -> Relation.t) -> t

val cc : string * (unit -> Relation.t) -> t

val sssp : ?source_seed:int -> string * (unit -> Relation.t) -> t

val andersen : scale:int -> int -> t
(** Dataset number 1..7. *)

val cspa : scale:int -> string -> t
(** linux / postgresql / httpd. *)

val csda : scale:int -> string -> t
