(** Figures 10-14: cross-system comparison on graph analytics.

    Fig 10: TC and SG across engines on the Gn-p family. Fig 11: memory
    timelines of the TC/SG runs on the mid-size graph. Fig 12: REACH, CC and
    SSSP on the RMAT size sweep. Fig 13: the same tasks on the
    real-world-like graphs. Fig 14: memory timelines on livejournal.
    OOM and timeout cells are reported exactly like the paper's bars. *)

module Engines = Rs_engines.Engines

let graph_engines =
  [
    Engines.recstep;
    Engines.distributed_bigdatalog;
    Engines.souffle_like;
    Engines.bigdatalog_like;
    Engines.bddbddb_like;
  ]

let budget_mib m = m * 1024 * 1024

let fig10 ~scale =
  Report.section ~id:"fig10" ~title:"TC and SG across systems on Gn-p graphs (budget 64 MiB)";
  let graphs = Workloads.gn_series ~scale in
  Report.note "-- Transitive Closure --";
  ignore
    (Report.cross_table ~mem_budget:(budget_mib 64) ~timeout_vs:30.0 ~engines:graph_engines
       ~workloads:(List.map Workloads.tc graphs) ());
  Report.note "-- Same Generation --";
  ignore
    (Report.cross_table ~mem_budget:(budget_mib 64) ~timeout_vs:30.0 ~engines:graph_engines
       ~workloads:(List.map Workloads.sg graphs) ())

let fig11 ~scale =
  Report.section ~id:"fig11" ~title:"Memory usage of TC and SG (mid-size dense graph)";
  let g = List.nth (Workloads.gn_series ~scale) 3 (* G200-0.2 *) in
  List.iter
    (fun (task, make_w) ->
      Report.note (Printf.sprintf "-- %s --" task);
      let series =
        List.filter_map
          (fun (module E : Rs_engines.Engine_intf.S) ->
            let r =
              Report.run_one ~mem_budget:(budget_mib 64) ~timeout_vs:30.0 (module E) (make_w g)
            in
            match r.Measure.outcome with
            | Measure.Unsupported _ -> None
            | _ -> Some (Printf.sprintf "%s (%s)" E.name (Measure.outcome_cell r.Measure.outcome),
                         r.Measure.mem_timeline))
          [ Engines.recstep; Engines.souffle_like; Engines.bigdatalog_like ]
      in
      Report.timeline_table ~title:"system \\ mem%" ~unit:"%" series)
    [ ("TC", Workloads.tc); ("SG", Workloads.sg) ]

let tasks ~with_sources =
  ignore with_sources;
  [
    ("REACH", fun g -> Workloads.reach g);
    ("CC", fun g -> Workloads.cc g);
    ("SSSP", fun g -> Workloads.sssp g);
  ]

let fig12 ~scale =
  Report.section ~id:"fig12" ~title:"REACH / CC / SSSP on the RMAT size sweep";
  let graphs = Workloads.rmat_series ~scale ~points:5 in
  List.iter
    (fun (task, make_w) ->
      Report.note (Printf.sprintf "-- %s --" task);
      ignore
        (Report.cross_table ~mem_budget:(budget_mib 128) ~timeout_vs:60.0
           ~engines:
             [ Engines.recstep; Engines.distributed_bigdatalog; Engines.souffle_like;
               Engines.bigdatalog_like ]
           ~workloads:(List.map make_w graphs) ()))
    (tasks ~with_sources:true)

let fig13 ~scale =
  Report.section ~id:"fig13" ~title:"REACH / CC / SSSP on real-world-like graphs (budget 96 MiB)";
  let graphs = Workloads.real_world ~scale in
  List.iter
    (fun (task, make_w) ->
      Report.note (Printf.sprintf "-- %s --" task);
      ignore
        (Report.cross_table ~mem_budget:(budget_mib 96) ~timeout_vs:60.0
           ~engines:
             [ Engines.recstep; Engines.distributed_bigdatalog; Engines.souffle_like;
               Engines.bigdatalog_like ]
           ~workloads:(List.map make_w graphs) ()))
    (tasks ~with_sources:true)

let fig14 ~scale =
  Report.section ~id:"fig14" ~title:"Memory consumption on livejournal";
  let lj = ("livejournal", List.assoc "livejournal" (Workloads.real_world ~scale)) in
  List.iter
    (fun (task, make_w) ->
      Report.note (Printf.sprintf "-- %s --" task);
      let series =
        List.filter_map
          (fun (module E : Rs_engines.Engine_intf.S) ->
            let r =
              Report.run_one ~mem_budget:(budget_mib 96) ~timeout_vs:60.0 (module E) (make_w lj)
            in
            match r.Measure.outcome with
            | Measure.Unsupported _ -> None
            | _ ->
                Some
                  ( Printf.sprintf "%s (%s)" E.name (Measure.outcome_cell r.Measure.outcome),
                    r.Measure.mem_timeline ))
          [ Engines.recstep; Engines.souffle_like; Engines.bigdatalog_like ]
      in
      Report.timeline_table ~title:"system \\ mem%" ~unit:"%" series)
    (tasks ~with_sources:true)

let run ~scale =
  fig10 ~scale;
  fig11 ~scale;
  fig12 ~scale;
  fig13 ~scale;
  fig14 ~scale
