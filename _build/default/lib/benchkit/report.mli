(** Output formatting shared by all experiment drivers. *)

val section : id:string -> title:string -> unit
(** Prints the experiment banner ("=== fig10: ... ==="). *)

val note : string -> unit

val run_one :
  ?workers:int ->
  ?mem_budget:int ->
  ?timeout_vs:float ->
  Rs_engines.Engine_intf.engine ->
  Workloads.t ->
  Measure.run
(** One engine on one workload under the harness's budgets. The
    Distributed-BigDatalog configuration automatically gets the paper's
    cluster memory (~2.8x the single node). *)

val cross_table :
  ?workers:int ->
  ?mem_budget:int ->
  ?timeout_vs:float ->
  engines:Rs_engines.Engine_intf.engine list ->
  workloads:Workloads.t list ->
  unit ->
  (string * Measure.run list) list
(** Runs every engine on every workload and prints the paper-style grid
    (rows = engines, columns = workloads, cells = seconds / OOM / timeout /
    "-"). Returns the raw runs per engine. *)

val timeline_table :
  title:string -> unit:string -> (string * (float * float) list) list -> unit
(** Renders time-series (memory or CPU-utilization timelines) as a table
    with ten time columns, resampling each series by
    last-value-carried-forward. *)

val resample : (float * float) list -> span:float -> points:int -> float list
