(** Figures 15 and 16: program-analysis comparison.

    Fig 15a: Andersen's analysis on the seven synthetic datasets.
    Fig 15b: context-sensitive dataflow (CSDA) on linux/postgresql/httpd.
    Fig 15c: context-sensitive points-to (CSPA) — BigDatalog shows "-"
    (mutual recursion), as in the paper.
    Fig 16: CPU-utilization timelines on AA and CSPA. *)

module Engines = Rs_engines.Engines

let budget = 128 * 1024 * 1024

let fig15 ~scale =
  Report.section ~id:"fig15" ~title:"Program analyses across systems";
  Report.note "-- Andersen's analysis (datasets 1-7) --";
  ignore
    (Report.cross_table ~mem_budget:budget ~timeout_vs:30.0
       ~engines:
         [ Engines.recstep; Engines.bigdatalog_like; Engines.souffle_like; Engines.bddbddb_like ]
       ~workloads:(List.map (Workloads.andersen ~scale) [ 1; 2; 3; 4; 5; 6; 7 ])
       ());
  Report.note "-- CSDA on system programs --";
  ignore
    (Report.cross_table ~mem_budget:budget ~timeout_vs:60.0
       ~engines:
         [ Engines.recstep; Engines.souffle_like; Engines.bigdatalog_like; Engines.graspan_like ]
       ~workloads:(List.map (Workloads.csda ~scale) [ "linux"; "postgresql"; "httpd" ])
       ());
  Report.note "-- CSPA on system programs --";
  ignore
    (Report.cross_table ~mem_budget:budget ~timeout_vs:60.0
       ~engines:
         [ Engines.recstep; Engines.souffle_like; Engines.bigdatalog_like; Engines.graspan_like;
           Engines.bddbddb_like ]
       ~workloads:(List.map (Workloads.cspa ~scale) [ "linux"; "postgresql"; "httpd" ])
       ())

let fig16 ~scale =
  Report.section ~id:"fig16" ~title:"CPU utilization on program analyses";
  List.iter
    (fun (label, w) ->
      Report.note (Printf.sprintf "-- %s --" label);
      let series =
        List.filter_map
          (fun (module E : Rs_engines.Engine_intf.S) ->
            let r = Report.run_one ~mem_budget:budget ~timeout_vs:60.0 (module E) w in
            match r.Measure.outcome with
            | Measure.Unsupported _ -> None
            | _ -> Some (E.name, r.Measure.util_timeline))
          [ Engines.recstep; Engines.souffle_like; Engines.bigdatalog_like ]
      in
      Report.timeline_table ~title:"system \\ util" ~unit:"%" series)
    [
      ("AA on dataset 5", Workloads.andersen ~scale 5);
      ("CSPA on linux", Workloads.cspa ~scale "linux");
      ("CSPA on httpd", Workloads.cspa ~scale "httpd");
    ]

let run ~scale =
  fig15 ~scale;
  fig16 ~scale
