lib/benchkit/report.ml: Array List Measure Option Printf Rs_engines Rs_relation Rs_storage Rs_util Workloads
