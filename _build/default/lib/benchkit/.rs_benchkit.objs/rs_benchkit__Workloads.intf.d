lib/benchkit/workloads.mli: Recstep Rs_relation
