lib/benchkit/measure.ml: Array List Option Printf Recstep Rs_engines Rs_parallel Rs_storage Rs_util
