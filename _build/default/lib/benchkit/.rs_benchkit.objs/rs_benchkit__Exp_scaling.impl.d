lib/benchkit/exp_scaling.ml: List Measure Printf Recstep Report Rs_util Workloads
