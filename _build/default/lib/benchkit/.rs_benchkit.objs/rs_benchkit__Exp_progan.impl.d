lib/benchkit/exp_progan.ml: List Measure Printf Report Rs_engines Workloads
