lib/benchkit/measure.mli: Rs_parallel
