lib/benchkit/workloads.ml: Array List Printf Recstep Rs_datagen Rs_relation
