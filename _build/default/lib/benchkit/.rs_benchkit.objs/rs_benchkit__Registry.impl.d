lib/benchkit/registry.ml: Exp_ablation Exp_cross Exp_extra Exp_pbme Exp_progan Exp_scaling Exp_tables List
