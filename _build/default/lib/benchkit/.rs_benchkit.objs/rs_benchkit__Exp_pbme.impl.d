lib/benchkit/exp_pbme.ml: List Measure Printf Recstep Report Rs_bitmatrix Rs_datagen Rs_util Workloads
