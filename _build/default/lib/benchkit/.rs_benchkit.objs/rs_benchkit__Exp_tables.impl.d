lib/benchkit/exp_tables.ml: List Measure Option Printf Report Rs_engines Rs_exec Rs_parallel Rs_relation Rs_util Workloads
