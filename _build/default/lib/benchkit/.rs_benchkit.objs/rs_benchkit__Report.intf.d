lib/benchkit/report.mli: Measure Rs_engines Workloads
