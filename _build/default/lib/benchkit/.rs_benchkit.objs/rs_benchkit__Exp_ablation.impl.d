lib/benchkit/exp_ablation.ml: List Measure Printf Recstep Report Rs_util Workloads
