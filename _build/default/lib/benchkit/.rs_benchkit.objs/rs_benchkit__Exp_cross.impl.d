lib/benchkit/exp_cross.ml: List Measure Printf Report Rs_engines Workloads
