module Relation = Rs_relation.Relation
module Graphs = Rs_datagen.Graphs

type t = {
  label : string;
  program : Recstep.Ast.program;
  make_edb : unit -> (string * Relation.t) list;
  output : string;
}

(* Gn-p stand-ins for [G5K .. G80K]: average degree ~8 except the two dense
   variants, mirroring [G10K-0.01, G10K-0.1]. *)
let gn_series ~scale =
  let s = scale in
  let gnp name n p = (name, fun () -> Graphs.gnp ~seed:(97 * n + int_of_float (p *. 1e4)) ~n ~p) in
  [
    gnp "G100" (100 * s) (8.0 /. float_of_int (100 * s));
    gnp "G200" (200 * s) (8.0 /. float_of_int (200 * s));
    gnp "G200-0.05" (200 * s) 0.05;
    gnp "G200-0.2" (200 * s) 0.2;
    gnp "G400" (400 * s) (8.0 /. float_of_int (400 * s));
    gnp "G800" (800 * s) (8.0 /. float_of_int (800 * s));
    gnp "G1600" (1600 * s) (8.0 /. float_of_int (1600 * s));
  ]

let rmat_series ~scale ~points =
  List.init points (fun i ->
      let n = 1024 * scale * (1 lsl i) in
      ( Printf.sprintf "RMAT-%dk" (n / 1024),
        fun () -> Graphs.rmat ~seed:(31 + i) ~n ~m:(10 * n) ))

let real_world ~scale =
  List.map
    (fun (name, _) -> (name, fun () -> Graphs.real_world_like ~seed:2024 ~scale name))
    Graphs.real_world_profiles

let parse = Recstep.Parser.parse

let tc (gname, make_arc) =
  {
    label = "TC/" ^ gname;
    program = parse Recstep.Programs.tc;
    make_edb = (fun () -> [ ("arc", make_arc ()) ]);
    output = "tc";
  }

let sg (gname, make_arc) =
  {
    label = "SG/" ^ gname;
    program = parse Recstep.Programs.sg;
    make_edb = (fun () -> [ ("arc", make_arc ()) ]);
    output = "sg";
  }

(* One random source per run, like the paper's randomly-picked vertices —
   but taken as the best-connected of ten candidates so the source is not a
   sink (the paper averages over ten sources; we run one representative). *)
let with_source ?(source_seed = 7) make_arc () =
  let arc = make_arc () in
  let n = Graphs.vertex_count arc in
  let degree = Array.make n 0 in
  for row = 0 to Relation.nrows arc - 1 do
    let x = Relation.get arc ~row ~col:0 in
    degree.(x) <- degree.(x) + 1
  done;
  let candidates = Graphs.random_sources ~seed:source_seed ~n ~count:10 in
  let best =
    List.fold_left
      (fun best id ->
        let v = Relation.get id ~row:0 ~col:0 in
        match best with
        | Some (_, d) when d >= degree.(v) -> best
        | _ -> Some (v, degree.(v)))
      None candidates
  in
  let id = Relation.create ~name:"id" 1 in
  (match best with Some (v, _) -> Relation.push1 id v | None -> Relation.push1 id 0);
  (arc, id)

let reach ?source_seed (gname, make_arc) =
  {
    label = "REACH/" ^ gname;
    program = parse Recstep.Programs.reach;
    make_edb =
      (fun () ->
        let arc, id = with_source ?source_seed make_arc () in
        [ ("arc", arc); ("id", id) ]);
    output = "reach";
  }

let cc (gname, make_arc) =
  {
    label = "CC/" ^ gname;
    program = parse Recstep.Programs.cc;
    make_edb = (fun () -> [ ("arc", make_arc ()) ]);
    output = "cc";
  }

let sssp ?source_seed (gname, make_arc) =
  {
    label = "SSSP/" ^ gname;
    program = parse Recstep.Programs.sssp;
    make_edb =
      (fun () ->
        let arc, id = with_source ?source_seed make_arc () in
        let weighted = Graphs.add_weights ~seed:5 ~max_weight:100 arc in
        Relation.release arc;
        [ ("arc", weighted); ("id", id) ]);
    output = "sssp";
  }

let andersen ~scale n =
  {
    label = Printf.sprintf "AA/dataset-%d" n;
    program = parse Recstep.Programs.andersen;
    make_edb = (fun () -> Rs_datagen.Prog_analysis.andersen_dataset ~seed:11 ~scale n);
    output = "pointsTo";
  }

let cspa ~scale name =
  {
    label = "CSPA/" ^ name;
    program = parse Recstep.Programs.cspa;
    make_edb = (fun () -> Rs_datagen.Prog_analysis.cspa_input ~seed:13 ~scale name);
    output = "valueFlow";
  }

let csda ~scale name =
  {
    label = "CSDA/" ^ name;
    program = parse Recstep.Programs.csda;
    make_edb = (fun () -> Rs_datagen.Prog_analysis.csda_input ~seed:17 ~scale name);
    output = "null";
  }
