(** Measured runs: one engine on one workload under a memory budget and a
    simulated-time budget, with memory and CPU-utilization sampling.

    The harness's failure vocabulary matches the paper's: a run ends
    {!constructor-Done}, "Out of Memory", "timeout", or unsupported (a blank
    bar / missing system in the figures). *)

module Pool = Rs_parallel.Pool

type outcome =
  | Done of float  (** simulated seconds *)
  | Oom
  | Timeout
  | Unsupported of string

type run = {
  run_name : string;
  outcome : outcome;
  peak_mem_pct : float;  (** peak tracked bytes / machine bytes *)
  mem_timeline : (float * float) list;  (** (simulated s, mem %) *)
  util_timeline : (float * float) list;  (** (simulated s, utilization %) *)
  workers : int;
  wall_s : float;  (** real seconds the measurement took *)
}

val run :
  ?workers:int ->
  ?mem_budget:int ->
  ?timeout_vs:float ->
  ?repeats:int ->
  name:string ->
  make_inputs:(unit -> 'i) ->
  ('i -> Pool.t -> deadline_vs:float option -> unit) ->
  run
(** [run ~name ~make_inputs f] builds the inputs (untimed, outside the
    budget), resets the memory tracker, and executes [f] on a fresh pool.
    [mem_budget] defaults to the machine size; [timeout_vs] to no limit.
    [repeats > 1] applies the paper's methodology: one discarded warm-up
    run, then the average of [repeats] measured runs (timelines and peak
    memory come from the last). *)

val outcome_cell : outcome -> string
(** Short table cell: "12.3", "OOM", ">10h" (timeout), "-" (unsupported). *)

val util_series : Pool.t -> buckets:int -> (float * float) list
(** Post-hoc CPU-utilization timeline from the pool's batch events. *)
