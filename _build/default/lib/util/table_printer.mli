(** Aligned ASCII tables for the benchmark harness output.

    Every paper table and figure is regenerated as text; this module renders
    the rows with a fixed, diff-friendly layout. *)

val render : header:string list -> string list list -> string
(** [render ~header rows] renders a table with column-aligned cells. *)

val print : header:string list -> string list list -> unit
(** [print] is {!render} followed by [print_string]. *)

val series : title:string -> x_label:string -> (string * string list) list
  -> x_ticks:string list -> string
(** [series ~title ~x_label ~x_ticks lines] renders a figure-like data block:
    one row per named line (system/config), one column per x tick. Used for
    the time-series and sweep figures. *)
