(** Compact concatenated keys (CK) for small integer tuples.

    The paper's FAST-DEDUP builds a "compact concatenated key" by packing all
    attributes of a tuple into one machine word, so the key doubles as the
    hash value and no separate [(key, value)] pair is stored. OCaml's native
    [int] is 63-bit, which fits two 31-bit attributes — exactly the paper's
    8-byte CK for two 4-byte integers. *)

val max_attr : int
(** Largest attribute value representable in a packed pair (2^31 - 1). *)

val pack2 : int -> int -> int
(** [pack2 x y] packs two attributes in [\[0, max_attr\]] into one key. *)

val unpack2 : int -> int * int
(** Inverse of {!pack2}. *)

val fits2 : int -> int -> bool
(** Whether both attributes fit in a packed pair. *)

val hash : int -> int
(** Fibonacci finalizer used to spread packed keys over power-of-two bucket
    arrays. *)

val hash_combine : int -> int -> int
(** [hash_combine acc x] mixes [x] into the running hash [acc], for tuples of
    arity at which packing no longer applies. *)
