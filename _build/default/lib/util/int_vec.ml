type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () = { data = Array.make (max capacity 1) 0; len = 0 }

let length v = v.len

let grow v needed =
  let cap = max needed (2 * Array.length v.data) in
  let data = Array.make cap 0 in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v (v.len + 1);
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Int_vec.get";
  Array.unsafe_get v.data i

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Int_vec.set";
  Array.unsafe_set v.data i x

let clear v = v.len <- 0

let to_array v = Array.sub v.data 0 v.len

let of_array a = { data = Array.copy a; len = Array.length a }

let create_sized n = { data = Array.make (max n 1) 0; len = n }

let blit src spos dst dpos len =
  if spos < 0 || len < 0 || spos + len > src.len || dpos < 0 || dpos + len > dst.len then
    invalid_arg "Int_vec.blit";
  Array.blit src.data spos dst.data dpos len

let unsafe_data v = v.data

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let append dst src =
  if dst.len + src.len > Array.length dst.data then grow dst (dst.len + src.len);
  Array.blit src.data 0 dst.data dst.len src.len;
  dst.len <- dst.len + src.len

let capacity_bytes v = 8 * Array.length v.data
