type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let r = find t p in
    t.parent.(i) <- r;
    r
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then
    if t.rank.(ra) < t.rank.(rb) then t.parent.(ra) <- rb
    else if t.rank.(ra) > t.rank.(rb) then t.parent.(rb) <- ra
    else begin
      t.parent.(rb) <- ra;
      t.rank.(ra) <- t.rank.(ra) + 1
    end

let same t a b = find t a = find t b

let component_min t =
  let n = Array.length t.parent in
  let min_of = Array.make n max_int in
  for i = 0 to n - 1 do
    let r = find t i in
    if i < min_of.(r) then min_of.(r) <- i
  done;
  Array.init n (fun i -> min_of.(find t i))
