let render ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let pad r = r @ List.init (ncols - List.length r) (fun _ -> "") in
  let all = List.map pad all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row -> List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row)
    all;
  let buf = Buffer.create 1024 in
  let line row =
    List.iteri
      (fun i c ->
        Buffer.add_string buf c;
        if i < ncols - 1 then Buffer.add_string buf (String.make (widths.(i) - String.length c + 2) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  (match all with
  | h :: rest ->
      line h;
      Buffer.add_string buf (String.make (Array.fold_left ( + ) (2 * (ncols - 1)) widths) '-');
      Buffer.add_char buf '\n';
      List.iter line rest
  | [] -> ());
  Buffer.contents buf

let print ~header rows = print_string (render ~header rows)

let series ~title ~x_label lines ~x_ticks:ticks =
  let header = (x_label ^ " \\ " ^ title) :: ticks in
  let rows = List.map (fun (name, cells) -> name :: cells) lines in
  render ~header rows
