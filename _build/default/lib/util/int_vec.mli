(** Growable arrays of unboxed integers.

    The columnar storage layer and the worklist engines accumulate tuples one
    attribute at a time; this vector avoids the boxing and indirection of
    ['a list] / [Buffer]-style accumulation. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty vector. *)

val length : t -> int

val push : t -> int -> unit
(** Amortized O(1) append. *)

val get : t -> int -> int
(** [get v i] is the [i]-th element; bounds-checked. *)

val set : t -> int -> int -> unit

val clear : t -> unit
(** Resets length to zero, keeping capacity. *)

val to_array : t -> int array
(** Fresh array copy of the contents. *)

val of_array : int array -> t

val create_sized : int -> t
(** [create_sized n] has length [n], zero-filled (for parallel scatter
    writes into precomputed slices). *)

val blit : t -> int -> t -> int -> int -> unit
(** [blit src spos dst dpos len] copies a range; bounds-checked. *)

val unsafe_data : t -> int array
(** The backing array (may be longer than [length]); for tight inner loops in
    the executor only. *)

val iter : (int -> unit) -> t -> unit

val append : t -> t -> unit
(** [append dst src] pushes all of [src] onto [dst]. *)

val capacity_bytes : t -> int
(** Bytes currently reserved by the backing array, for memory accounting. *)
