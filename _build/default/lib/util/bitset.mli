(** Fixed-size bit sets over [0, n).

    Used for visited-sets in the worklist engines and as the row type of the
    PBME bit matrix. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [\[0, n)]. *)

val universe : t -> int

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val test_and_set : t -> int -> bool
(** [test_and_set t i] adds [i] and returns [true] iff it was absent. *)

val cardinal : t -> int
(** Population count; O(n/64). *)

val iter : (int -> unit) -> t -> unit
(** Iterates set members in increasing order. *)

val union_into : t -> t -> bool
(** [union_into dst src] ors [src] into [dst]; returns [true] if [dst]
    changed. Universes must match. *)

val copy : t -> t

val clear : t -> unit

val bytes : t -> int
(** Memory footprint of the backing words, for accounting. *)
