type t = { words : int array; n : int }

let create n = { words = Array.make ((n + 62) / 63) 0; n }

let universe t = t.n

let mem t i = t.words.(i / 63) land (1 lsl (i mod 63)) <> 0

let add t i =
  let w = i / 63 in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod 63))

let remove t i =
  let w = i / 63 in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod 63))

let test_and_set t i =
  let w = i / 63 and b = 1 lsl (i mod 63) in
  let old = t.words.(w) in
  if old land b <> 0 then false
  else begin
    t.words.(w) <- old lor b;
    true
  end

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter f t =
  for wi = 0 to Array.length t.words - 1 do
    let w = ref t.words.(wi) in
    while !w <> 0 do
      let b = !w land - !w in
      let i = (wi * 63) + (let rec lg b k = if b = 1 then k else lg (b lsr 1) (k + 1) in lg b 0) in
      f i;
      w := !w land lnot b
    done
  done

let union_into dst src =
  if dst.n <> src.n then invalid_arg "Bitset.union_into";
  let changed = ref false in
  for i = 0 to Array.length dst.words - 1 do
    let u = dst.words.(i) lor src.words.(i) in
    if u <> dst.words.(i) then begin
      dst.words.(i) <- u;
      changed := true
    end
  done;
  !changed

let copy t = { words = Array.copy t.words; n = t.n }

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let bytes t = 8 * Array.length t.words
