type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64: fast, high-quality, and trivially splittable. *)
let golden = 0x9E3779B97F4A7C15L

let next64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t bound =
  assert (bound > 0);
  next t mod bound

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  x /. 9007199254740992.0 *. bound

let bool t p = float t 1.0 < p

let split t =
  let s = next t in
  create (s lxor 0x5851F42D4C957F2D)

let shuffle t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
