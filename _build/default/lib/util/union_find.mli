(** Disjoint-set forest with path compression and union by rank.

    Reference implementation used to validate connected-components results
    produced by the Datalog engines. *)

type t

val create : int -> t
(** [create n] has singletons [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> unit

val same : t -> int -> int -> bool

val component_min : t -> int array
(** [component_min t] maps every element to the minimum element of its
    component — the value computed by the paper's CC Datalog program. *)
