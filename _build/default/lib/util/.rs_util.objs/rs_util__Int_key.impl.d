lib/util/int_key.ml:
