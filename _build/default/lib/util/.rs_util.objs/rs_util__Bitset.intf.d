lib/util/bitset.mli:
