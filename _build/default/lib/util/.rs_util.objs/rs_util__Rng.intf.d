lib/util/rng.mli:
