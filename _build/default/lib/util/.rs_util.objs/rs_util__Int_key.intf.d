lib/util/int_key.mli:
