lib/util/clock.mli:
