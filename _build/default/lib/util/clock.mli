(** Wall-clock timing for the measurement substrate. *)

val now : unit -> float
(** Monotonic-enough wall time in seconds (microsecond resolution). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed seconds. *)
