let max_attr = (1 lsl 31) - 1

let pack2 x y = (x lsl 31) lor y

let unpack2 k = (k lsr 31, k land max_attr)

let fits2 x y = x >= 0 && y >= 0 && x <= max_attr && y <= max_attr

(* 2^62 / phi, odd. Multiplicative (Fibonacci) hashing: good bucket spread
   for keys that differ in few low or high bits. *)
let phi = 0x2545F4914F6CDD1D

let hash k =
  let h = k * phi in
  (h lxor (h lsr 29)) land max_int

let hash_combine acc x = hash ((acc * 31) + x)
