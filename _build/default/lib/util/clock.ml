let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)
