(** Deterministic pseudo-random number generation.

    All dataset generators in this repository draw from this splitmix64-based
    generator so that every experiment is reproducible from a seed, matching
    the paper's use of seeded GTgraph/RMAT generators. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal streams. *)

val next : t -> int
(** [next t] returns the next pseudo-random non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int t bound] returns a uniform integer in [\[0, bound)]. [bound] must be
    positive. *)

val float : t -> float -> float
(** [float t bound] returns a uniform float in [\[0, bound)]. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val split : t -> t
(** [split t] derives an independent generator from [t]'s stream, for giving
    substructures (e.g. graph partitions) their own deterministic streams. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)
