let tc =
  {|
.input arc
.output tc
tc(x, y) :- arc(x, y).
tc(x, y) :- tc(x, z), arc(z, y).
|}

let sg =
  {|
.input arc
.output sg
sg(x, y) :- arc(p, x), arc(p, y), x != y.
sg(x, y) :- arc(a, x), sg(a, b), arc(b, y).
|}

let reach =
  {|
.input arc
.input id
.output reach
reach(y) :- id(y).
reach(y) :- reach(x), arc(x, y).
|}

let cc =
  {|
.input arc
.output cc
cc3(x, MIN(x)) :- arc(x, _).
cc3(y, MIN(z)) :- cc3(x, z), arc(x, y).
cc2(x, MIN(y)) :- cc3(x, y).
cc(x) :- cc2(_, x).
|}

let sssp =
  {|
.input arc 3
.input id
.output sssp
sssp2(y, MIN(0)) :- id(y).
sssp2(y, MIN(d1 + d2)) :- sssp2(x, d1), arc(x, y, d2).
sssp(x, MIN(d)) :- sssp2(x, d).
|}

let andersen =
  {|
.input addressOf
.input assign
.input load
.input store
.output pointsTo
pointsTo(y, x) :- addressOf(y, x).
pointsTo(y, x) :- assign(y, z), pointsTo(z, x).
pointsTo(y, w) :- load(y, x), pointsTo(x, z), pointsTo(z, w).
pointsTo(z, w) :- store(y, x), pointsTo(y, z), pointsTo(x, w).
|}

let cspa =
  {|
.input assign
.input dereference
.output valueFlow
.output memoryAlias
.output valueAlias
valueFlow(y, x) :- assign(y, x).
valueFlow(x, y) :- assign(x, z), memoryAlias(z, y).
valueFlow(x, y) :- valueFlow(x, z), valueFlow(z, y).
memoryAlias(x, w) :- dereference(y, x), valueAlias(y, z), dereference(z, w).
valueAlias(x, y) :- valueFlow(z, x), valueFlow(z, y).
valueAlias(x, y) :- valueFlow(z, x), memoryAlias(z, w), valueFlow(w, y).
valueFlow(x, x) :- assign(x, y).
valueFlow(x, x) :- assign(y, x).
memoryAlias(x, x) :- assign(y, x).
memoryAlias(x, x) :- assign(x, y).
|}

let csda =
  {|
.input nullEdge
.input arc
.output null
null(x, y) :- nullEdge(x, y).
null(x, y) :- null(x, w), arc(w, y).
|}

let ntc =
  {|
.input arc
.output ntc
tc(x, y) :- arc(x, y).
tc(x, y) :- tc(x, z), arc(z, y).
node(x) :- arc(x, y).
node(y) :- arc(x, y).
ntc(x, y) :- node(x), node(y), !tc(x, y).
|}

let gtc =
  {|
.input arc
.output gtc
tc(x, y) :- arc(x, y).
tc(x, y) :- tc(x, z), arc(z, y).
gtc(x, COUNT(y)) :- tc(x, y).
|}

let all =
  [
    ("tc", tc);
    ("sg", sg);
    ("reach", reach);
    ("cc", cc);
    ("sssp", sssp);
    ("andersen", andersen);
    ("cspa", cspa);
    ("csda", csda);
    ("ntc", ntc);
    ("gtc", gtc);
  ]

let parsed src = Parser.parse src
