open Ast

type shape = Tc of { idb : string; edb : string } | Sg of { idb : string; edb : string }

(* Try to extend a variable bijection with v1 <-> v2. *)
let bind bij v1 v2 =
  match (List.assoc_opt v1 bij, List.exists (fun (_, w) -> w = v2) bij) with
  | Some w, _ -> if w = v2 then Some bij else None
  | None, true -> None
  | None, false -> Some ((v1, v2) :: bij)

let match_term bij t1 t2 =
  match (t1, t2) with
  | Var v1, Var v2 -> bind bij v1 v2
  | Const c1, Const c2 -> if c1 = c2 then Some bij else None
  | Wildcard, Wildcard -> Some bij
  | _ -> None

let rec match_terms bij ts1 ts2 =
  match (ts1, ts2) with
  | [], [] -> Some bij
  | t1 :: r1, t2 :: r2 -> (
      match match_term bij t1 t2 with None -> None | Some b -> match_terms b r1 r2)
  | _ -> None

let match_atom bij a1 a2 =
  if a1.pred = a2.pred then match_terms bij a1.args a2.args else None

let rec match_expr bij e1 e2 =
  match (e1, e2) with
  | T t1, T t2 -> match_term bij t1 t2
  | Add (a1, b1), Add (a2, b2) | Sub (a1, b1), Sub (a2, b2) | Mul (a1, b1), Mul (a2, b2) -> (
      match match_expr bij a1 a2 with None -> None | Some b -> match_expr b b1 b2)
  | _ -> None

let match_literal bij l1 l2 =
  match (l1, l2) with
  | L_pos a1, L_pos a2 | L_neg a1, L_neg a2 -> match_atom bij a1 a2
  | L_cmp (op1, a1, b1), L_cmp (op2, a2, b2) when op1 = op2 -> (
      let direct =
        match match_expr bij a1 a2 with None -> None | Some b -> match_expr b b1 b2
      in
      match direct with
      | Some _ -> direct
      | None ->
          (* != and = are symmetric: also try the swapped orientation. *)
          if op1 = Ne || op1 = Eq then
            match match_expr bij a1 b2 with None -> None | Some b -> match_expr b b1 a2
          else None)
  | _ -> None

let match_head_term bij h1 h2 =
  match (h1, h2) with
  | H_term t1, H_term t2 -> match_term bij t1 t2
  | H_agg (op1, e1), H_agg (op2, e2) when op1 = op2 -> match_expr bij e1 e2
  | _ -> None

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y != x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let rule_matches ~template r =
  if template.head_pred <> r.head_pred then false
  else if List.length template.body <> List.length r.body then false
  else begin
    let head_bij =
      List.fold_left2
        (fun acc h1 h2 -> match acc with None -> None | Some b -> match_head_term b h1 h2)
        (Some [])
        template.head_args r.head_args
    in
    match head_bij with
    | None -> false
    | Some bij0 ->
        List.exists
          (fun body_perm ->
            let rec go bij ts rs =
              match (ts, rs) with
              | [], [] -> true
              | t :: ts', r' :: rs' -> (
                  match match_literal bij t r' with
                  | None -> false
                  | Some b -> go b ts' rs')
              | _ -> false
            in
            go bij0 template.body body_perm)
          (permutations r.body)
  end

(* Templates are parsed from the paper's own rule text; predicate names are
   rewritten to the stratum's actual names before matching. *)
let rename_rule ~idb ~edb r =
  let ren p = if p = "r" then idb else if p = "e" then edb else p in
  let atom a = { a with pred = ren a.pred } in
  {
    head_pred = ren r.head_pred;
    head_args = r.head_args;
    body =
      List.map
        (function
          | L_pos a -> L_pos (atom a)
          | L_neg a -> L_neg (atom a)
          | L_cmp _ as c -> c)
        r.body;
  }

let tc_templates =
  [
    ("r(x, y) :- e(x, y).", "r(x, y) :- r(x, z), e(z, y)."); (* right-linear *)
    ("r(x, y) :- e(x, y).", "r(x, y) :- e(x, z), r(z, y)."); (* left-linear *)
  ]

let sg_templates =
  [ ("r(x, y) :- e(p, x), e(p, y), x != y.", "r(x, y) :- e(a, x), r(a, b), e(b, y).") ]

let body_edbs an r =
  List.filter_map
    (function
      | L_pos a when List.mem a.pred an.Analyzer.edbs -> Some a.pred
      | L_pos _ | L_neg _ | L_cmp _ -> None)
    r.body

let match_stratum an stratum =
  match stratum.Analyzer.preds with
  | [ idb ] when stratum.recursive && Analyzer.arity an idb = 2 -> (
      let rules = stratum.rules in
      if List.length rules <> 2 then None
      else begin
        (* Candidate EDB: any binary EDB used by the stratum. *)
        let edbs =
          List.sort_uniq compare (List.concat_map (body_edbs an) rules)
          |> List.filter (fun e -> Analyzer.arity an e = 2)
        in
        let try_templates mk templates =
          List.find_map
            (fun edb ->
              List.find_map
                (fun (base_t, rec_t) ->
                  let base = rename_rule ~idb ~edb (Parser.parse_rule base_t) in
                  let rec_ = rename_rule ~idb ~edb (Parser.parse_rule rec_t) in
                  let matches r t = rule_matches ~template:t r in
                  let ok =
                    match rules with
                    | [ r1; r2 ] ->
                        (matches r1 base && matches r2 rec_)
                        || (matches r2 base && matches r1 rec_)
                    | _ -> false
                  in
                  if ok then Some (mk ~idb ~edb) else None)
                templates)
            edbs
        in
        match try_templates (fun ~idb ~edb -> Tc { idb; edb }) tc_templates with
        | Some s -> Some s
        | None -> try_templates (fun ~idb ~edb -> Sg { idb; edb }) sg_templates
      end)
  | _ -> None
