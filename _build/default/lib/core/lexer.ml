type token =
  | IDENT of string
  | INT of int
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | IMPLIES
  | BANG
  | UNDERSCORE
  | PLUS
  | MINUS
  | STAR
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | DIRECTIVE of string
  | EOF

exception Error of { line : int; message : string }

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '_' || c = '\''
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let tokens = ref [] in
  let emit t = tokens := (t, !line) :: !tokens in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '%' || c = '#' || (c = '/' && peek 1 = Some '/') then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      emit (IDENT (String.sub src start (!i - start)))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      emit (INT (int_of_string (String.sub src start (!i - start))))
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | ":-" -> emit IMPLIES; i := !i + 2
      | "!=" -> emit NE; i := !i + 2
      | "<=" -> emit LE; i := !i + 2
      | ">=" -> emit GE; i := !i + 2
      | "<>" -> emit NE; i := !i + 2
      | _ -> (
          match c with
          | '(' -> emit LPAREN; incr i
          | ')' -> emit RPAREN; incr i
          | ',' -> emit COMMA; incr i
          | '!' -> emit BANG; incr i
          | '_' ->
              (* lone [_] is a wildcard; [_foo] is an identifier *)
              if !i + 1 < n && is_ident_char src.[!i + 1] then begin
                let start = !i in
                incr i;
                while !i < n && is_ident_char src.[!i] do
                  incr i
                done;
                emit (IDENT (String.sub src start (!i - start)))
              end
              else begin
                emit UNDERSCORE;
                incr i
              end
          | '+' -> emit PLUS; incr i
          | '-' -> emit MINUS; incr i
          | '*' -> emit STAR; incr i
          | '=' -> emit EQ; incr i
          | '<' -> emit LT; incr i
          | '>' -> emit GT; incr i
          | '.' ->
              (* A dot glued to a letter starts a directive; otherwise it
                 terminates a rule. *)
              if !i + 1 < n && is_ident_start src.[!i + 1] then begin
                let start = !i + 1 in
                incr i;
                while !i < n && is_ident_char src.[!i] do
                  incr i
                done;
                emit (DIRECTIVE (String.sub src start (!i - start)))
              end
              else begin
                emit DOT;
                incr i
              end
          | _ ->
              raise
                (Error { line = !line; message = Printf.sprintf "unexpected character %C" c }))
    end
  done;
  emit EOF;
  List.rev !tokens

let token_to_string = function
  | IDENT s -> s
  | INT k -> string_of_int k
  | LPAREN -> "(" | RPAREN -> ")" | COMMA -> "," | DOT -> "."
  | IMPLIES -> ":-" | BANG -> "!" | UNDERSCORE -> "_"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*"
  | EQ -> "=" | NE -> "!=" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | DIRECTIVE d -> "." ^ d
  | EOF -> "<eof>"
