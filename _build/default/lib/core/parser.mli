(** Recursive-descent parser for [.datalog] programs.

    Grammar (paper §3 syntax, plus directives):
    {v
    program   ::= (directive | rule | fact)*
    directive ::= .input IDENT [INT]      -- declare an EDB (arity optional)
                | .output IDENT           -- relation to report
    rule      ::= head ":-" literal ("," literal)* "."
    fact      ::= head "."
    head      ::= IDENT "(" head_term ("," head_term)* ")"
    head_term ::= AGG "(" expr ")" | term      AGG in MIN MAX SUM COUNT AVG
    literal   ::= "!" atom | atom | expr cmp expr
    cmp       ::= "=" | "!=" | "<" | "<=" | ">" | ">="
    expr      ::= arithmetic over terms with + - *
    term      ::= variable | integer | "_"
    v} *)

exception Error of { line : int; message : string }

val parse : string -> Ast.program
(** Parses a program from source text. Raises {!Error} or {!Lexer.Error}. *)

val parse_file : string -> Ast.program

val parse_rule : string -> Ast.rule
(** Parses a single rule (testing helper). *)
