(** Structural detection of PBME-eligible strata (paper §5.3).

    RecStep switches to the bit-matrix kernels when a stratum is exactly the
    transitive-closure or same-generation shape over a binary EDB and the
    matrix fits in memory. Matching is modulo variable renaming and body
    atom order. *)

type shape =
  | Tc of { idb : string; edb : string }
      (** [r(x,y) :- e(x,y). r(x,y) :- r(x,z), e(z,y).] (either join order) *)
  | Sg of { idb : string; edb : string }
      (** [r(x,y) :- e(p,x), e(p,y), x != y. r(x,y) :- e(a,x), r(a,b), e(b,y).] *)

val match_stratum : Analyzer.t -> Analyzer.stratum -> shape option

val rule_matches : template:Ast.rule -> Ast.rule -> bool
(** [rule_matches ~template r] tests structural equality modulo a variable
    bijection and body-literal permutation (exposed for tests). *)
