(** Rule analyzer (paper §4): preprocessing before query generation.

    Identifies EDB and IDB relations, verifies syntactic correctness
    (arities, safety, aggregate-signature consistency), builds the rule
    dependency graph, and computes the stratification — the strongly
    connected components of the dependency graph in topological order.
    Also enforces the dialect's semantic restrictions: stratified negation,
    and only monotone aggregates (MIN/MAX) inside recursion. *)

exception Analysis_error of string

type agg_sig = {
  group_positions : int list;  (** head positions holding plain terms *)
  agg_positions : (int * Ast.agg_op) list;  (** head positions holding aggregates *)
}

type stratum = {
  index : int;
  preds : string list;  (** IDB predicates defined in this stratum *)
  rules : Ast.rule list;  (** rules whose head is in this stratum *)
  recursive : bool;
}

type t = {
  program : Ast.program;  (** normalized: wildcards renamed apart *)
  arities : (string * int) list;
  edbs : string list;
  idbs : string list;
  strata : stratum list;  (** bottom-up evaluation order *)
  agg_sigs : (string * agg_sig) list;  (** aggregate IDBs and their shape *)
}

val analyze : Ast.program -> t
(** Raises {!Analysis_error} with a human-readable message on any
    ill-formedness: unsafe rule, arity mismatch, unstratifiable negation,
    non-monotone recursive aggregation, inconsistent aggregate signatures,
    or an input declaration that collides with an IDB. *)

val arity : t -> string -> int

val stratum_of : t -> string -> int
(** Stratum index of an IDB predicate. *)

val agg_sig : t -> string -> agg_sig option

val is_recursive_pred : t -> stratum -> string -> bool
(** Whether [pred] is defined in the given stratum (and hence must be
    delta-rewritten when it occurs in a body there). *)
