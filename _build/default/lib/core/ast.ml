(** Abstract syntax of the Datalog dialect (paper §3).

    Pure Datalog extended with stratified negation, head aggregation
    (MIN/MAX/SUM/COUNT/AVG, allowed inside recursion for the monotone ops),
    arithmetic inside aggregate arguments (e.g. [MIN(d1 + d2)] in SSSP), and
    comparison literals (e.g. [x != y] in Same Generation). *)

type term =
  | Var of string
  | Const of int
  | Wildcard  (** [_]: anonymous variable, fresh at each occurrence *)

(** Arithmetic over terms, used in aggregate arguments and comparisons. *)
type expr =
  | T of term
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr

type agg_op = Min | Max | Sum | Count | Avg

(** A head argument: a plain term or an aggregate over a body expression. *)
type head_term =
  | H_term of term
  | H_agg of agg_op * expr

type atom = { pred : string; args : term list }

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type literal =
  | L_pos of atom
  | L_neg of atom  (** stratified negation: [!p(x, y)] *)
  | L_cmp of cmp * expr * expr

type rule = { head_pred : string; head_args : head_term list; body : literal list }

type program = {
  rules : rule list;
  inputs : (string * int) list;  (** declared EDB relations with arity *)
  outputs : string list;  (** relations to report at the end *)
}

let atom_vars a =
  List.filter_map (function Var v -> Some v | Const _ | Wildcard -> None) a.args

let rec expr_vars = function
  | T (Var v) -> [ v ]
  | T (Const _ | Wildcard) -> []
  | Add (a, b) | Sub (a, b) | Mul (a, b) -> expr_vars a @ expr_vars b

let literal_vars = function
  | L_pos a | L_neg a -> atom_vars a
  | L_cmp (_, a, b) -> expr_vars a @ expr_vars b

let head_term_vars = function
  | H_term (Var v) -> [ v ]
  | H_term (Const _ | Wildcard) -> []
  | H_agg (_, e) -> expr_vars e

let rule_body_preds r =
  List.filter_map (function L_pos a | L_neg a -> Some a.pred | L_cmp _ -> None) r.body

let is_aggregate_rule r = List.exists (function H_agg _ -> true | H_term _ -> false) r.head_args

let term_to_string = function
  | Var v -> v
  | Const c -> string_of_int c
  | Wildcard -> "_"

let rec expr_to_string = function
  | T t -> term_to_string t
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (expr_to_string a) (expr_to_string b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (expr_to_string a) (expr_to_string b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (expr_to_string a) (expr_to_string b)

let agg_op_to_string = function
  | Min -> "MIN" | Max -> "MAX" | Sum -> "SUM" | Count -> "COUNT" | Avg -> "AVG"

let head_term_to_string = function
  | H_term t -> term_to_string t
  | H_agg (op, e) -> Printf.sprintf "%s(%s)" (agg_op_to_string op) (expr_to_string e)

let cmp_to_string = function
  | Eq -> "=" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let atom_to_string a =
  Printf.sprintf "%s(%s)" a.pred (String.concat ", " (List.map term_to_string a.args))

let literal_to_string = function
  | L_pos a -> atom_to_string a
  | L_neg a -> "!" ^ atom_to_string a
  | L_cmp (op, a, b) ->
      Printf.sprintf "%s %s %s" (expr_to_string a) (cmp_to_string op) (expr_to_string b)

let rule_to_string r =
  Printf.sprintf "%s(%s) :- %s." r.head_pred
    (String.concat ", " (List.map head_term_to_string r.head_args))
    (String.concat ", " (List.map literal_to_string r.body))

let program_to_string p = String.concat "\n" (List.map rule_to_string p.rules)
