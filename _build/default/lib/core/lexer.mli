(** Hand-written lexer for [.datalog] sources. *)

type token =
  | IDENT of string
  | INT of int
  | LPAREN
  | RPAREN
  | COMMA
  | DOT  (** rule terminator *)
  | IMPLIES  (** [:-] *)
  | BANG
  | UNDERSCORE
  | PLUS
  | MINUS
  | STAR
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | DIRECTIVE of string  (** [.input], [.output], ... — dot glued to a word *)
  | EOF

exception Error of { line : int; message : string }

val tokenize : string -> (token * int) list
(** [tokenize src] returns tokens with their line numbers. Comments ([//],
    [%] and [#] to end of line) and whitespace are skipped. Raises {!Error}
    on unexpected characters. *)

val token_to_string : token -> string
