open Ast

exception Error of { line : int; message : string }

type state = { mutable toks : (Lexer.token * int) list }

let err line fmt = Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

let peek st = match st.toks with [] -> (Lexer.EOF, 0) | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok what =
  let t, line = next st in
  if t <> tok then err line "expected %s, found %s" what (Lexer.token_to_string t)

let agg_of_ident = function
  | "MIN" | "min" -> Some Min
  | "MAX" | "max" -> Some Max
  | "SUM" | "sum" -> Some Sum
  | "COUNT" | "count" -> Some Count
  | "AVG" | "avg" -> Some Avg
  | _ -> None

let parse_term st =
  match next st with
  | Lexer.IDENT v, _ -> Var v
  | Lexer.INT k, _ -> Const k
  | Lexer.MINUS, _ -> (
      match next st with
      | Lexer.INT k, _ -> Const (-k)
      | t, line -> err line "expected integer after '-', found %s" (Lexer.token_to_string t))
  | Lexer.UNDERSCORE, _ -> Wildcard
  | t, line -> err line "expected term, found %s" (Lexer.token_to_string t)

let rec parse_expr st =
  let lhs = parse_mul st in
  let rec loop lhs =
    match peek st with
    | Lexer.PLUS, _ ->
        advance st;
        loop (Add (lhs, parse_mul st))
    | Lexer.MINUS, _ ->
        advance st;
        loop (Sub (lhs, parse_mul st))
    | _ -> lhs
  in
  loop lhs

and parse_mul st =
  let lhs = parse_prim st in
  let rec loop lhs =
    match peek st with
    | Lexer.STAR, _ ->
        advance st;
        loop (Mul (lhs, parse_prim st))
    | _ -> lhs
  in
  loop lhs

and parse_prim st =
  match peek st with
  | Lexer.LPAREN, _ ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.RPAREN ")";
      e
  | _ -> T (parse_term st)

let parse_atom_args st =
  expect st Lexer.LPAREN "(";
  let rec loop acc =
    let t = parse_term st in
    match next st with
    | Lexer.COMMA, _ -> loop (t :: acc)
    | Lexer.RPAREN, _ -> List.rev (t :: acc)
    | tok, line -> err line "expected ',' or ')', found %s" (Lexer.token_to_string tok)
  in
  loop []

let cmp_of_token = function
  | Lexer.EQ -> Some Eq
  | Lexer.NE -> Some Ne
  | Lexer.LT -> Some Lt
  | Lexer.LE -> Some Le
  | Lexer.GT -> Some Gt
  | Lexer.GE -> Some Ge
  | _ -> None

let parse_literal st =
  match peek st with
  | Lexer.BANG, _ ->
      advance st;
      let name, line = next st in
      (match name with
      | Lexer.IDENT pred -> L_neg { pred; args = parse_atom_args st }
      | t -> err line "expected predicate after '!', found %s" (Lexer.token_to_string t))
  | Lexer.IDENT pred, _ when (match st.toks with _ :: (Lexer.LPAREN, _) :: _ -> true | _ -> false)
    ->
      advance st;
      L_pos { pred; args = parse_atom_args st }
  | _, line -> (
      let lhs = parse_expr st in
      let tok, _ = next st in
      match cmp_of_token tok with
      | Some op -> L_cmp (op, lhs, parse_expr st)
      | None -> err line "expected comparison operator, found %s" (Lexer.token_to_string tok))

let parse_head_term st =
  match peek st with
  | Lexer.IDENT id, _
    when agg_of_ident id <> None
         && (match st.toks with _ :: (Lexer.LPAREN, _) :: _ -> true | _ -> false) -> (
      advance st;
      expect st Lexer.LPAREN "(";
      let e = parse_expr st in
      expect st Lexer.RPAREN ")";
      match agg_of_ident id with Some op -> H_agg (op, e) | None -> assert false)
  | _ -> H_term (parse_term st)

let parse_head st =
  match next st with
  | Lexer.IDENT pred, _ ->
      expect st Lexer.LPAREN "(";
      let rec loop acc =
        let t = parse_head_term st in
        match next st with
        | Lexer.COMMA, _ -> loop (t :: acc)
        | Lexer.RPAREN, _ -> List.rev (t :: acc)
        | tok, line -> err line "expected ',' or ')', found %s" (Lexer.token_to_string tok)
      in
      (pred, loop [])
  | t, line -> err line "expected rule head, found %s" (Lexer.token_to_string t)

let parse_rule_tail st head_pred head_args =
  match next st with
  | Lexer.DOT, _ -> { head_pred; head_args; body = [] }
  | Lexer.IMPLIES, _ ->
      let rec loop acc =
        let l = parse_literal st in
        match next st with
        | Lexer.COMMA, _ -> loop (l :: acc)
        | Lexer.DOT, _ -> List.rev (l :: acc)
        | tok, line -> err line "expected ',' or '.', found %s" (Lexer.token_to_string tok)
      in
      { head_pred; head_args; body = loop [] }
  | t, line -> err line "expected ':-' or '.', found %s" (Lexer.token_to_string t)

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let rules = ref [] and inputs = ref [] and outputs = ref [] in
  let rec loop () =
    match peek st with
    | Lexer.EOF, _ -> ()
    | Lexer.DIRECTIVE d, line ->
        advance st;
        (match d with
        | "input" | "decl" -> (
            match next st with
            | Lexer.IDENT name, _ ->
                let arity =
                  match peek st with
                  | Lexer.INT k, _ ->
                      advance st;
                      k
                  | _ -> 0 (* inferred later from rule bodies *)
                in
                inputs := (name, arity) :: !inputs
            | t, l -> err l "expected relation name after .%s, found %s" d (Lexer.token_to_string t))
        | "output" | "printsize" -> (
            match next st with
            | Lexer.IDENT name, _ -> outputs := name :: !outputs
            | t, l -> err l "expected relation name after .%s, found %s" d (Lexer.token_to_string t))
        | other -> err line "unknown directive .%s" other);
        loop ()
    | _ ->
        let head_pred, head_args = parse_head st in
        rules := parse_rule_tail st head_pred head_args :: !rules;
        loop ()
  in
  loop ();
  { rules = List.rev !rules; inputs = List.rev !inputs; outputs = List.rev !outputs }

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse src

let parse_rule src =
  match (parse src).rules with
  | [ r ] -> r
  | rs -> invalid_arg (Printf.sprintf "parse_rule: expected 1 rule, got %d" (List.length rs))
