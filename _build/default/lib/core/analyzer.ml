open Ast

exception Analysis_error of string

type agg_sig = {
  group_positions : int list;
  agg_positions : (int * Ast.agg_op) list;
}

type stratum = {
  index : int;
  preds : string list;
  rules : Ast.rule list;
  recursive : bool;
}

type t = {
  program : Ast.program;
  arities : (string * int) list;
  edbs : string list;
  idbs : string list;
  strata : stratum list;
  agg_sigs : (string * agg_sig) list;
}

let fail fmt = Printf.ksprintf (fun m -> raise (Analysis_error m)) fmt

(* --- normalization: give every wildcard occurrence a fresh name --- *)

let normalize_rule counter r =
  let fresh () =
    incr counter;
    Var (Printf.sprintf "$w%d" !counter)
  in
  let term = function Wildcard -> fresh () | t -> t in
  let rec expr = function
    | T t -> T (term t)
    | Add (a, b) -> Add (expr a, expr b)
    | Sub (a, b) -> Sub (expr a, expr b)
    | Mul (a, b) -> Mul (expr a, expr b)
  in
  let atom a = { a with args = List.map term a.args } in
  let literal = function
    | L_pos a -> L_pos (atom a)
    | L_neg a -> L_neg (atom a)
    | L_cmp (op, a, b) -> L_cmp (op, expr a, expr b)
  in
  let head_term = function
    | H_term Wildcard -> fail "wildcard in rule head: %s" (rule_to_string r)
    | H_term t -> H_term t
    | H_agg (op, e) -> H_agg (op, expr e)
  in
  { head_pred = r.head_pred; head_args = List.map head_term r.head_args; body = List.map literal r.body }

(* --- arity collection and checks --- *)

let collect_arities (program : Ast.program) =
  let table : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let note pred arity where =
    match Hashtbl.find_opt table pred with
    | None -> Hashtbl.add table pred arity
    | Some a when a = arity -> ()
    | Some a -> fail "arity mismatch for %s: %d vs %d (%s)" pred a arity where
  in
  List.iter
    (fun r ->
      note r.head_pred (List.length r.head_args) (rule_to_string r);
      List.iter
        (function
          | L_pos a | L_neg a -> note a.pred (List.length a.args) (rule_to_string r)
          | L_cmp _ -> ())
        r.body)
    program.rules;
  List.iter
    (fun (name, arity) ->
      if arity > 0 then note name arity (Printf.sprintf ".input %s %d" name arity))
    program.inputs;
  table

(* --- safety --- *)

let positive_vars r =
  List.concat_map (function L_pos a -> atom_vars a | L_neg _ | L_cmp _ -> []) r.body

let check_safety r =
  let pos = positive_vars r in
  let check_vars what vars =
    List.iter
      (fun v ->
        if not (List.mem v pos) then
          fail "unsafe rule (%s variable %s not bound by a positive atom): %s" what v
            (rule_to_string r))
      vars
  in
  check_vars "head" (List.concat_map head_term_vars r.head_args);
  List.iter
    (function
      | L_pos _ -> ()
      | L_neg a -> check_vars "negated" (atom_vars a)
      | L_cmp (_, a, b) -> check_vars "comparison" (expr_vars a @ expr_vars b))
    r.body

(* --- aggregate signatures --- *)

let rule_agg_sig r =
  let group, aggs =
    List.fold_left
      (fun (g, a) (i, ht) ->
        match ht with H_term _ -> (i :: g, a) | H_agg (op, _) -> (g, (i, op) :: a))
      ([], [])
      (List.mapi (fun i ht -> (i, ht)) r.head_args)
  in
  if aggs = [] then None
  else Some { group_positions = List.rev group; agg_positions = List.rev aggs }

let collect_agg_sigs rules =
  let table : (string, agg_sig) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match rule_agg_sig r with
      | None ->
          if Hashtbl.mem table r.head_pred then
            fail "predicate %s mixes aggregate and plain rules" r.head_pred
      | Some s -> (
          match Hashtbl.find_opt table r.head_pred with
          | None ->
              (* Error if an earlier rule for this head had no aggregate. *)
              Hashtbl.add table r.head_pred s
          | Some s' when s = s' -> ()
          | Some _ -> fail "predicate %s has inconsistent aggregate signatures" r.head_pred))
    rules;
  (* A second pass catches plain rules that precede the aggregate ones. *)
  List.iter
    (fun r ->
      if rule_agg_sig r = None && Hashtbl.mem table r.head_pred then
        fail "predicate %s mixes aggregate and plain rules" r.head_pred)
    rules;
  table

(* --- dependency graph over IDB predicates and SCC stratification --- *)

let idb_dependencies rules idbs =
  (* edges: head -> body-idb it depends on; negative marks record ¬ uses *)
  let deps : (string, string list) Hashtbl.t = Hashtbl.create 32 in
  let negdeps = ref [] in
  List.iter (fun p -> Hashtbl.replace deps p []) idbs;
  List.iter
    (fun r ->
      List.iter
        (function
          | L_pos a when List.mem a.pred idbs ->
              Hashtbl.replace deps r.head_pred (a.pred :: Hashtbl.find deps r.head_pred)
          | L_neg a when List.mem a.pred idbs ->
              Hashtbl.replace deps r.head_pred (a.pred :: Hashtbl.find deps r.head_pred);
              negdeps := (r.head_pred, a.pred) :: !negdeps
          | L_pos _ | L_neg _ | L_cmp _ -> ())
        r.body)
    rules;
  (deps, !negdeps)

(* Tarjan's algorithm; returns SCCs as lists of predicates. *)
let tarjan nodes succ =
  let index : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let lowlink : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let on_stack : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succ v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  (* Tarjan emits an SCC only after all SCCs it depends on; reversing the
     emission order would be top-down, so keep emission order = bottom-up. *)
  List.rev !sccs

let analyze (program : Ast.program) =
  let counter = ref 0 in
  let rules = List.map (normalize_rule counter) program.rules in
  let program = { program with rules } in
  let arities = collect_arities program in
  let idbs =
    List.sort_uniq compare (List.map (fun r -> r.head_pred) rules)
  in
  let edbs =
    Hashtbl.fold (fun p _ acc -> if List.mem p idbs then acc else p :: acc) arities []
    |> List.sort compare
  in
  List.iter
    (fun (name, _) ->
      if List.mem name idbs then
        fail "relation %s is declared .input but appears in a rule head" name)
    program.inputs;
  List.iter check_safety rules;
  let agg_table = collect_agg_sigs rules in
  let deps, negdeps = idb_dependencies rules idbs in
  let succ v = try Hashtbl.find deps v with Not_found -> [] in
  (* strongconnect v explores the predicates v depends on first, so SCCs come
     out bottom-up: dependencies before dependents. *)
  let sccs = tarjan idbs succ in
  let stratum_of : (string, int) Hashtbl.t = Hashtbl.create 32 in
  List.iteri (fun i scc -> List.iter (fun p -> Hashtbl.replace stratum_of p i) scc) sccs;
  (* Stratified negation: ¬p in a rule for q requires stratum p < stratum q
     (EDBs are always fine). *)
  List.iter
    (fun (q, p) ->
      if Hashtbl.find stratum_of p >= Hashtbl.find stratum_of q then
        fail "program is not stratifiable: %s depends negatively on %s within a cycle" q p)
    negdeps;
  let strata =
    List.mapi
      (fun index scc ->
        let stratum_rules = List.filter (fun r -> List.mem r.head_pred scc) rules in
        let recursive =
          (* recursive iff the SCC has an internal edge (self-loop or cycle) *)
          List.exists
            (fun r -> List.exists (fun p -> List.mem p scc) (rule_body_preds r))
            stratum_rules
        in
        { index; preds = scc; rules = stratum_rules; recursive })
      sccs
  in
  (* Monotone aggregation inside recursion only. *)
  List.iter
    (fun s ->
      if s.recursive then
        List.iter
          (fun p ->
            match Hashtbl.find_opt agg_table p with
            | Some { agg_positions; _ } ->
                List.iter
                  (fun (_, op) ->
                    match op with
                    | Min | Max -> ()
                    | Sum | Count | Avg ->
                        fail
                          "non-monotone aggregate %s on %s inside recursion does not converge"
                          (agg_op_to_string op) p)
                  agg_positions
            | None -> ())
          s.preds)
    strata;
  {
    program;
    arities = Hashtbl.fold (fun k v acc -> (k, v) :: acc) arities [] |> List.sort compare;
    edbs;
    idbs;
    strata;
    agg_sigs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) agg_table [] |> List.sort compare;
  }

let arity t name =
  match List.assoc_opt name t.arities with
  | Some a -> a
  | None -> fail "unknown relation %s" name

let stratum_of t name =
  let rec go = function
    | [] -> fail "predicate %s is not an IDB" name
    | s :: rest -> if List.mem name s.preds then s.index else go rest
  in
  go t.strata

let agg_sig t name = List.assoc_opt name t.agg_sigs

let is_recursive_pred _t stratum name = List.mem name stratum.preds
