lib/core/analyzer.ml: Ast Hashtbl List Printf
