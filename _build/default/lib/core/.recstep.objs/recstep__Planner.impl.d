lib/core/planner.ml: Analyzer Array Ast List Option Printf Rs_exec
