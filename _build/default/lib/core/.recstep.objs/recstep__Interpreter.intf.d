lib/core/interpreter.mli: Ast Rs_exec Rs_parallel Rs_relation
