lib/core/lexer.mli:
