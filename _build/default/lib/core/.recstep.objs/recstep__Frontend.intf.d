lib/core/frontend.mli: Interpreter Rs_parallel Rs_relation
