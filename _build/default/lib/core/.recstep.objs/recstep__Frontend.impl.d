lib/core/frontend.ml: Array Interpreter List Option Parser Printf Rs_parallel Rs_relation String
