lib/core/ast.ml: List Printf String
