lib/core/analyzer.mli: Ast
