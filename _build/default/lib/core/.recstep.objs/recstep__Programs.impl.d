lib/core/programs.ml: Parser
