lib/core/programs.mli: Ast
