lib/core/pattern.mli: Analyzer Ast
