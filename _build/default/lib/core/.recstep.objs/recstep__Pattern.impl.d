lib/core/pattern.ml: Analyzer Ast List Parser
