lib/core/parser.ml: Ast Lexer List Printf
