lib/core/interpreter.ml: Analyzer Array Ast Hashtbl List Option Pattern Planner Printf Rs_bitmatrix Rs_exec Rs_parallel Rs_relation Rs_storage Rs_util
