lib/core/planner.mli: Analyzer Ast Rs_exec
