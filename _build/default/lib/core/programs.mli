(** The paper's benchmark Datalog programs (§6.2), verbatim.

    Each value is the [.datalog] source text; [parsed] gives the AST. Graph
    programs expect the binary EDB [arc] (ternary [arc(x, y, d)] for SSSP)
    and, for REACH/SSSP, the unary source relation [id]. The program-analysis
    EDBs follow the paper: [addressOf/assign/load/store] for Andersen,
    [assign/dereference] for CSPA, [nullEdge/arc] for CSDA. *)

val tc : string
(** Transitive closure (Example 1). *)

val sg : string
(** Same generation (§5.3). *)

val reach : string
(** Reachability from the vertices in [id]. *)

val cc : string
(** Connected components via recursive MIN aggregation. *)

val sssp : string
(** Single-source shortest path via recursive MIN aggregation. *)

val andersen : string
(** Andersen's points-to analysis (4 rules, non-linear recursion). *)

val cspa : string
(** Context-sensitive points-to analysis (mutual recursion across
    valueFlow / memoryAlias / valueAlias). *)

val csda : string
(** Context-sensitive dataflow analysis (null-flow propagation). *)

val ntc : string
(** Complement of transitive closure (Example 2 — stratified negation). *)

val gtc : string
(** TC plus the COUNT-per-source rule of §3.3 (non-recursive aggregation). *)

val all : (string * string) list
(** [(name, source)] for every program above. *)

val parsed : string -> Ast.program
(** Parse one of the sources (or any other program text). *)
