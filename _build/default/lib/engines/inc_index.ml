module Relation = Rs_relation.Relation
module Int_vec = Rs_util.Int_vec
module Int_key = Rs_util.Int_key
module Memtrack = Rs_storage.Memtrack

type t = {
  key_cols : int array;
  mutable heads : int array;
  nexts : Int_vec.t;
  rows : Int_vec.t;
  mutable mask : int;
  mutable accounted : int;
}

let create key_cols =
  let cap = 64 in
  {
    key_cols;
    heads = Array.make cap (-1);
    nexts = Int_vec.create ();
    rows = Int_vec.create ();
    mask = cap - 1;
    accounted = 0;
  }

let key_cols t = t.key_cols

let hash_of t rel row =
  match Array.length t.key_cols with
  | 1 -> Int_key.hash (Relation.get rel ~row ~col:t.key_cols.(0))
  | 2 ->
      Int_key.hash
        (Int_key.pack2
           (Relation.get rel ~row ~col:t.key_cols.(0))
           (Relation.get rel ~row ~col:t.key_cols.(1)))
  | _ ->
      Array.fold_left
        (fun acc c -> Int_key.hash_combine acc (Relation.get rel ~row ~col:c))
        0x9E3779B9 t.key_cols

let hash_key t key =
  match Array.length t.key_cols with
  | 1 -> Int_key.hash key.(0)
  | 2 -> Int_key.hash (Int_key.pack2 key.(0) key.(1))
  | _ -> Array.fold_left Int_key.hash_combine 0x9E3779B9 key

let rehash t rel =
  let cap = 2 * Array.length t.heads in
  let heads = Array.make cap (-1) in
  let mask = cap - 1 in
  let n = Int_vec.length t.rows in
  for slot = 0 to n - 1 do
    let h = hash_of t rel (Int_vec.get t.rows slot) land mask in
    Int_vec.set t.nexts slot heads.(h);
    heads.(h) <- slot
  done;
  t.heads <- heads;
  t.mask <- mask

let add t rel row =
  let h = hash_of t rel row land t.mask in
  let slot = Int_vec.length t.rows in
  Int_vec.push t.rows row;
  Int_vec.push t.nexts t.heads.(h);
  t.heads.(h) <- slot;
  if slot + 1 > Array.length t.heads then rehash t rel

let iter_matches t rel key f =
  let h = hash_key t key land t.mask in
  let eq row =
    let rec go i =
      i = Array.length t.key_cols
      || (Relation.get rel ~row ~col:t.key_cols.(i) = key.(i) && go (i + 1))
    in
    go 0
  in
  let rec walk slot =
    if slot >= 0 then begin
      let row = Int_vec.get t.rows slot in
      if eq row then f row;
      walk (Int_vec.get t.nexts slot)
    end
  in
  walk t.heads.(h)

let bytes t =
  (8 * Array.length t.heads) + Int_vec.capacity_bytes t.nexts + Int_vec.capacity_bytes t.rows

let account t =
  let b = bytes t in
  let delta = b - t.accounted in
  if delta > 0 then Memtrack.alloc delta else Memtrack.free (-delta);
  t.accounted <- b

let release t =
  Memtrack.free t.accounted;
  t.accounted <- 0
