(** Graspan-like baseline: worklist-driven edge-pair computation.

    Reimplements the evaluation model of Graspan (paper §6.1): the program
    is viewed as a context-free grammar over *binary* relations (edge
    labels); a worklist of edges is expanded in batches against per-label
    adjacency lists, with the new edges of every round sorted and merged
    into the adjacency structure — Graspan's sort-heavy, coordination-heavy
    design is why the paper finds it slower than the Datalog engines
    (Figures 15b/15c).

    Fragment: binary predicates only; rule bodies must form a chain of at
    most three binary atoms connecting the head variables (atoms may be
    traversed reversed); no negation, comparison or aggregation. CSPA and
    CSDA fit (with an auxiliary label for the three-atom rule); everything
    else raises {!Engine_intf.Unsupported}, matching Table 1. *)

include Engine_intf.S
