(** Incrementally maintained multi-map index for the compiled engines.

    The Souffle-like engine keeps one index per (relation, bound-positions)
    access pattern, updated as tuples are inserted — the analogue of
    Souffle's automatically selected B-tree indices. *)

type t

val create : int array -> t
(** [create key_cols] — empty index keyed on those columns. *)

val key_cols : t -> int array

val add : t -> Rs_relation.Relation.t -> int -> unit
(** [add t rel row] indexes row [row] of [rel] (always the same relation for
    a given index). *)

val iter_matches : t -> Rs_relation.Relation.t -> int array -> (int -> unit) -> unit
(** [iter_matches t rel key f] calls [f row] for rows whose key columns
    equal [key]. *)

val bytes : t -> int

val account : t -> unit

val release : t -> unit
