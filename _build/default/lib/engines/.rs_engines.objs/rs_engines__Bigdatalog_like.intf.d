lib/engines/bigdatalog_like.mli: Engine_intf
