lib/engines/souffle_like.mli: Engine_intf
