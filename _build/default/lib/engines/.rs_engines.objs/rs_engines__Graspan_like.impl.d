lib/engines/graspan_like.ml: Array Engine_intf Hashtbl List Printf Recstep Rs_parallel Rs_relation Rs_storage Rs_util
