lib/engines/recstep_engine.mli: Engine_intf
