lib/engines/recstep_engine.ml: Engine_intf Recstep
