lib/engines/bigdatalog_like.ml: Engine_intf Fun List Recstep Rs_parallel String
