lib/engines/engines.ml: Bddbddb_like Bigdatalog_like Engine_intf Graspan_like List Recstep_engine Souffle_like
