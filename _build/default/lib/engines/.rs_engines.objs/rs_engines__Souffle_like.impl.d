lib/engines/souffle_like.ml: Array Engine_intf Hashtbl Inc_index List Option Printf Recstep Rs_parallel Rs_relation
