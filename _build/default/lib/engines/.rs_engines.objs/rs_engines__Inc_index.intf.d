lib/engines/inc_index.mli: Rs_relation
