lib/engines/engines.mli: Engine_intf
