lib/engines/graspan_like.mli: Engine_intf
