lib/engines/bddbddb_like.ml: Array Engine_intf Hashtbl List Printf Recstep Rs_bdd Rs_parallel Rs_relation Rs_util
