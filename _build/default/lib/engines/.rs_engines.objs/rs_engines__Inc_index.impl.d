lib/engines/inc_index.ml: Array Rs_relation Rs_storage Rs_util
