lib/engines/bddbddb_like.mli: Engine_intf
