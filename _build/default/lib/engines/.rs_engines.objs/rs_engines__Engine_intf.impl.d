lib/engines/engine_intf.ml: Printf Recstep Rs_parallel Rs_relation
