(** bddbddb-like baseline: Datalog evaluation on binary decision diagrams.

    Reimplements the representation strategy of bddbddb (paper §6.1 [26]):
    relations are BDDs over bit-blasted domains; joins are AND + EXISTS,
    union is OR, the semi-naive delta is DIFF. Single-threaded, like the
    original. Competitive only when domains are small and the encoded
    relations compress well; on larger active domains the node count — and
    with it time and tracked memory — explodes, reproducing the paper's
    "orders of magnitude slower / timeout" observations (Figures 10, 15).

    Fragment: arity <= 2, no negation, no aggregation, only [=]/[!=]
    comparisons; outside it {!Engine_intf.Unsupported} is raised. *)

include Engine_intf.S
