(** Common interface of the Datalog engines under comparison.

    Each baseline from the paper's evaluation (§6.1) is reimplemented on the
    same substrates (relations, worker pool, memory tracker) so that the
    cross-system experiments compare *techniques*, not incidental runtime
    differences. [capabilities] carries the qualitative rows of the paper's
    Table 1; [run] raises {!Unsupported} exactly where the paper reports a
    system cannot express a workload. *)

exception Unsupported of string

type capabilities = {
  scale_up : bool;
  scale_out : bool;
  memory_consumption : string;  (** "low" / "medium" / "high" *)
  cpu_utilization : string;  (** "poor" / "medium" / "high" *)
  cpu_efficiency : string;  (** "-" / "low" / "medium" / "high" *)
  tuning_required : string;  (** hyperparameter-tuning burden *)
  mutual_recursion : bool;
  nonrecursive_aggregation : bool;
  recursive_aggregation : bool;
}

module type S = sig
  val name : string

  val capabilities : capabilities

  val run :
    pool:Rs_parallel.Pool.t ->
    ?deadline_vs:float ->
    edb:(string * Rs_relation.Relation.t) list ->
    Recstep.Ast.program ->
    string -> Rs_relation.Relation.t
  (** Evaluates the program to fixpoint and returns a lookup for result
      relations. Raises {!Unsupported} for programs outside the engine's
      fragment, [Recstep.Interpreter.Timeout_simulated] past [deadline_vs],
      and [Rs_storage.Memtrack.Simulated_oom] over the memory budget. *)
end

type engine = (module S)

let unsupported fmt = Printf.ksprintf (fun m -> raise (Unsupported m)) fmt
