(** BigDatalog-like baseline: bulk-synchronous, Spark-style evaluation.

    Reimplements the behavioural profile of BigDatalog (paper §6.1): each
    semi-naive iteration is a scheduled distributed stage with a fixed
    scheduling overhead, per-iteration shuffle outputs stay cached (RDD
    lineage), and the language fragment excludes mutual recursion (CSPA
    raises {!Engine_intf.Unsupported}, Figure 15c) while supporting
    recursive aggregation (CC, SSSP). Strong on few-iteration bulk
    workloads; the per-stage overhead dominates many-iteration programs and
    the cached shuffles inflate memory — exactly the trade-offs the paper
    measures (Figures 10-15, Table 1 "memory consumption: high").

    {!distributed} is the same engine configured like the paper's
    Distributed-BigDatalog reference cluster: 6x the workers, lower
    scheduling overhead per unit of work. *)

include Engine_intf.S

val distributed : Engine_intf.engine
