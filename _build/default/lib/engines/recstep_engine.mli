(** RecStep behind the common engine interface (full capability row of
    Table 1: mutual recursion, non-recursive and recursive aggregation). *)

include Engine_intf.S
