(** Souffle-like baseline: compiled, tuple-at-a-time semi-naive evaluation.

    Reimplements the evaluation strategy of Souffle (paper §6.1): each rule
    is "compiled" ahead of time into a probe program over incrementally
    maintained indices (our stand-in for Souffle's auto-selected B-trees),
    the outer loop over the driving delta is parallelized over the worker
    pool, and there is no per-query overhead — the profile that makes the
    real Souffle win CSDA and lose ground when deltas are small (its
    parallelism is workload-dependent, Figures 12a/15a/16).

    Capability envelope per Table 1: mutual recursion and non-recursive
    aggregation supported; recursive aggregation NOT supported (CC and SSSP
    raise {!Engine_intf.Unsupported}); stratified negation supported. *)

include Engine_intf.S
