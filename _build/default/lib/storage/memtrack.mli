(** Global memory accounting for the storage layer.

    Every relation block, hash table, bit matrix and BDD node arena reports
    its reserved bytes here. The benchmark harness samples {!live} to draw
    the paper's memory-usage timelines (Figures 3, 6, 11, 14) and enforces a
    configurable budget to reproduce the paper's out-of-memory failures
    ("Out of Memory" bars in Figures 10, 12, 13). *)

exception Simulated_oom of { requested : int; live : int; budget : int }
(** Raised by {!alloc} when a budget is set and would be exceeded. *)

val alloc : int -> unit
(** Account [bytes] of new reservation. Raises {!Simulated_oom} if over
    budget. *)

val free : int -> unit
(** Release previously accounted bytes. *)

val live : unit -> int
(** Currently accounted bytes. *)

val peak : unit -> int
(** High-water mark since the last {!reset}. *)

val reset_peak : unit -> unit

val hard_reset : unit -> unit
(** Zero the live counter and peak. The benchmark harness calls this between
    measured runs so that garbage from a previous run (whose owners never
    called [free]) does not count against the next run's budget. *)

val set_budget : int option -> unit
(** [set_budget (Some b)] makes allocations beyond [b] live bytes raise;
    [None] disables the check. *)

val budget : unit -> int option

val machine_bytes : unit -> int
(** The simulated machine's memory, used to express usage as a percentage
    (the paper's y-axes). Default 2 GiB; override with {!set_machine_bytes}. *)

val set_machine_bytes : int -> unit

val percent : int -> float
(** [percent bytes] is [bytes] as a percentage of {!machine_bytes}. *)
