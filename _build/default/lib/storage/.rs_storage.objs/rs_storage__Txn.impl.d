lib/storage/txn.ml: Bytes Filename Sys
