lib/storage/txn.mli:
