lib/storage/memtrack.ml: Atomic
