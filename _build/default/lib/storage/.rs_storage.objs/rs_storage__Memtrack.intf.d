lib/storage/memtrack.mli:
