lib/parallel/pool.ml: Array Fun List Rs_util Sys
