lib/parallel/pool.mli:
