(** Multi-map hash index from key columns to row ids.

    The build side of every hash join, anti-join and group-by in the
    executor. Chains are stored in flat arrays (no boxing), matching the
    storage discipline of the rest of the backend. *)

type t

val build : Relation.t -> int array -> t
(** [build r key_cols] indexes every row of [r] by the values of
    [key_cols]. The index holds a reference to [r]; [r] must not be mutated
    while the index is in use. *)

val build_pool : Rs_parallel.Pool.t -> Relation.t -> int array -> t
(** Like {!build} but with the insertion pass chunked through the worker
    pool. Chain insertion is order-independent and latch-free with a CAS on
    the bucket head (the same argument as the CCK-GSCHT, Figure 5), so the
    build step is charged as parallel work. *)

val relation : t -> Relation.t

val key_cols : t -> int array

val iter_matches : t -> int array -> (int -> unit) -> unit
(** [iter_matches idx key f] calls [f row_id] for every indexed row whose key
    columns equal [key]. *)

val iter_matches2 : t -> int -> int -> (int -> unit) -> unit
(** Specialization for two-column keys. *)

val iter_matches1 : t -> int -> (int -> unit) -> unit
(** Specialization for one-column keys. *)

val mem : t -> int array -> bool

val nrows : t -> int

val bytes : t -> int
(** Footprint of the index arrays (excluding the indexed relation). *)

val account : t -> unit

val release : t -> unit
