module Int_vec = Rs_util.Int_vec
module Int_key = Rs_util.Int_key
module Memtrack = Rs_storage.Memtrack

type t = {
  rel : Relation.t;
  key_cols : int array;
  heads : int array;
  nexts : int array;
  mask : int;
  mutable accounted : int;
}

let pow2_at_least n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 16

let row_key_hash rel key_cols row =
  match Array.length key_cols with
  | 1 -> Int_key.hash (Relation.get rel ~row ~col:key_cols.(0))
  | 2 ->
      Int_key.hash
        (Int_key.pack2 (Relation.get rel ~row ~col:key_cols.(0)) (Relation.get rel ~row ~col:key_cols.(1)))
  | _ ->
      Array.fold_left
        (fun acc c -> Int_key.hash_combine acc (Relation.get rel ~row ~col:c))
        0x9E3779B9 key_cols

let build rel key_cols =
  let n = Relation.nrows rel in
  let cap = pow2_at_least (2 * max 8 n) in
  let heads = Array.make cap (-1) in
  let nexts = Array.make (max 1 n) (-1) in
  let mask = cap - 1 in
  for row = 0 to n - 1 do
    let h = row_key_hash rel key_cols row land mask in
    nexts.(row) <- heads.(h);
    heads.(h) <- row
  done;
  { rel; key_cols; heads; nexts; mask; accounted = 0 }

let build_pool pool rel key_cols =
  let n = Relation.nrows rel in
  let cap = pow2_at_least (2 * max 8 n) in
  let heads = Array.make cap (-1) in
  let nexts = Array.make (max 1 n) (-1) in
  let mask = cap - 1 in
  (* Chain prepends commute; under real threads this is one CAS per row on
     the bucket head (cf. Cck_concurrent), so the pass is parallel work. *)
  Rs_parallel.Pool.parallel_for pool 0 n (fun lo hi ->
      for row = lo to hi - 1 do
        let h = row_key_hash rel key_cols row land mask in
        nexts.(row) <- heads.(h);
        heads.(h) <- row
      done);
  { rel; key_cols; heads; nexts; mask; accounted = 0 }

let relation t = t.rel
let key_cols t = t.key_cols
let nrows t = Relation.nrows t.rel

let key_eq t row key =
  let rec go i =
    i = Array.length t.key_cols
    || (Relation.get t.rel ~row ~col:t.key_cols.(i) = key.(i) && go (i + 1))
  in
  go 0

let iter_matches t key f =
  let h =
    match Array.length t.key_cols with
    | 1 -> Int_key.hash key.(0)
    | 2 -> Int_key.hash (Int_key.pack2 key.(0) key.(1))
    | _ -> Array.fold_left Int_key.hash_combine 0x9E3779B9 key
  in
  let rec walk row =
    if row >= 0 then begin
      if key_eq t row key then f row;
      walk t.nexts.(row)
    end
  in
  walk t.heads.(h land t.mask)

let iter_matches1 t k f =
  let c = t.key_cols.(0) in
  let rec walk row =
    if row >= 0 then begin
      if Relation.get t.rel ~row ~col:c = k then f row;
      walk t.nexts.(row)
    end
  in
  walk t.heads.(Int_key.hash k land t.mask)

let iter_matches2 t k1 k2 f =
  let c1 = t.key_cols.(0) and c2 = t.key_cols.(1) in
  let rec walk row =
    if row >= 0 then begin
      if Relation.get t.rel ~row ~col:c1 = k1 && Relation.get t.rel ~row ~col:c2 = k2 then f row;
      walk t.nexts.(row)
    end
  in
  walk t.heads.(Int_key.hash (Int_key.pack2 k1 k2) land t.mask)

exception Found

let mem t key =
  try
    iter_matches t key (fun _ -> raise Found);
    false
  with Found -> true

let bytes t = 8 * (Array.length t.heads + Array.length t.nexts)

let account t =
  let b = bytes t in
  let delta = b - t.accounted in
  if delta > 0 then Memtrack.alloc delta else Memtrack.free (-delta);
  t.accounted <- b

let release t =
  Memtrack.free t.accounted;
  t.accounted <- 0
