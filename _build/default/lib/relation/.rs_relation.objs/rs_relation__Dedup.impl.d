lib/relation/dedup.ml: Array Hashtbl List Option Relation Rs_parallel Rs_storage Rs_util
