lib/relation/dedup.mli: Relation Rs_parallel
