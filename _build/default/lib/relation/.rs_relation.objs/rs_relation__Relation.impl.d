lib/relation/relation.ml: Array List Option Rs_parallel Rs_storage Rs_util
