lib/relation/hash_index.ml: Array Relation Rs_parallel Rs_storage Rs_util
