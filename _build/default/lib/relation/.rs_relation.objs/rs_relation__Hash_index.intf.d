lib/relation/hash_index.mli: Relation Rs_parallel
