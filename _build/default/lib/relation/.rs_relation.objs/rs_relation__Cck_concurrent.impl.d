lib/relation/cck_concurrent.ml: Array Atomic List Rs_util
