lib/relation/cck_concurrent.mli:
