lib/relation/relation.mli: Rs_parallel Rs_util
