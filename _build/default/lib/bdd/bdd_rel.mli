(** Relations as BDDs (the bddbddb representation).

    Attributes are bit-blasted into fixed-width *domains*: domain [d]
    occupies BDD variables [d*bits .. (d+1)*bits - 1] (MSB first). A
    relation of arity [k] is canonically stored over domains [0..k-1];
    rule evaluation renames atom BDDs into per-rule variable domains,
    conjoins, quantifies, and renames back. *)

type space = { mgr : Bdd.mgr; bits : int; ndomains : int }

val make_space : bits:int -> ndomains:int -> space

val tuple_bdd : space -> int array -> int array -> Bdd.node
(** [tuple_bdd sp domains tuple] is the cube for [tuple] with column [i] in
    domain [domains.(i)]. *)

val of_relation : space -> Rs_relation.Relation.t -> Bdd.node
(** Canonical encoding over domains [0..arity-1]. *)

val count : space -> arity:int -> Bdd.node -> int
(** Tuples in a canonical relation BDD. *)

val to_relation : space -> arity:int -> ?name:string -> Bdd.node -> Rs_relation.Relation.t
(** Materializes a canonical relation BDD (small results only). *)

val rename : space -> from_domains:int array -> to_domains:int array -> Bdd.node -> Bdd.node
(** Moves each listed domain to its target; unlisted domains untouched. *)

val exists_domains : space -> int list -> Bdd.node -> Bdd.node

val domain_vars : space -> int -> int list
(** The BDD variables of a domain, ascending. *)
