lib/bdd/bdd.ml: Array Hashtbl Rs_storage Rs_util
