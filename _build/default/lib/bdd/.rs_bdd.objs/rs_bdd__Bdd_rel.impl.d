lib/bdd/bdd_rel.ml: Array Bdd List Rs_relation
