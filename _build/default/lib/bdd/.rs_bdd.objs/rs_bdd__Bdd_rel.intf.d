lib/bdd/bdd_rel.mli: Bdd Rs_relation
