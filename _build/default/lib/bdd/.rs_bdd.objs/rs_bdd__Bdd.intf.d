lib/bdd/bdd.mli:
