module Memtrack = Rs_storage.Memtrack

type node = int

let bfalse = 0
let btrue = 1

type mgr = {
  nvars : int;
  mutable var_of : int array;  (* node -> test variable; terminals get max_int *)
  mutable lo_of : int array;
  mutable hi_of : int array;
  mutable count : int;
  unique : (int * int * int, int) Hashtbl.t;
  and_cache : (int * int, int) Hashtbl.t;
  or_cache : (int * int, int) Hashtbl.t;
  diff_cache : (int * int, int) Hashtbl.t;
  ite_cache : (int * int * int, int) Hashtbl.t;
  mutable accounted : int;
  mutable deadline : float option;
}

let node_bytes = 8 * 6 (* three arena slots + unique-table entry estimate *)

let create ~nvars =
  let cap = 1024 in
  let m =
    {
      nvars;
      var_of = Array.make cap max_int;
      lo_of = Array.make cap 0;
      hi_of = Array.make cap 0;
      count = 2;
      unique = Hashtbl.create 4096;
      and_cache = Hashtbl.create 4096;
      or_cache = Hashtbl.create 4096;
      diff_cache = Hashtbl.create 4096;
      ite_cache = Hashtbl.create 1024;
      accounted = 0;
      deadline = None;
    }
  in
  m.var_of.(0) <- max_int;
  m.var_of.(1) <- max_int;
  m

exception Deadline_exceeded

let set_deadline m d = m.deadline <- d

let nvars m = m.nvars
let node_count m = m.count

let grow m =
  let cap = 2 * Array.length m.var_of in
  let copy a init =
    let b = Array.make cap init in
    Array.blit a 0 b 0 m.count;
    b
  in
  m.var_of <- copy m.var_of max_int;
  m.lo_of <- copy m.lo_of 0;
  m.hi_of <- copy m.hi_of 0

let mk m v lo hi =
  if lo = hi then lo
  else begin
    let key = (v, lo, hi) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
        if m.count = Array.length m.var_of then grow m;
        let n = m.count in
        m.count <- n + 1;
        m.var_of.(n) <- v;
        m.lo_of.(n) <- lo;
        m.hi_of.(n) <- hi;
        Hashtbl.add m.unique key n;
        (* Account in 64 KiB steps to keep the tracker cheap; piggyback the
           deadline check on the same stride. *)
        let bytes = m.count * node_bytes in
        if bytes - m.accounted > 65536 then begin
          Memtrack.alloc (bytes - m.accounted);
          m.accounted <- bytes;
          match m.deadline with
          | Some t when Rs_util.Clock.now () > t -> raise Deadline_exceeded
          | _ -> ()
        end;
        n
  end

let var m v = mk m v bfalse btrue

let rec mk_and m a b =
  if a = bfalse || b = bfalse then bfalse
  else if a = btrue then b
  else if b = btrue then a
  else if a = b then a
  else begin
    let key = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt m.and_cache key with
    | Some r -> r
    | None ->
        let va = m.var_of.(a) and vb = m.var_of.(b) in
        let v = min va vb in
        let alo, ahi = if va = v then (m.lo_of.(a), m.hi_of.(a)) else (a, a) in
        let blo, bhi = if vb = v then (m.lo_of.(b), m.hi_of.(b)) else (b, b) in
        let r = mk m v (mk_and m alo blo) (mk_and m ahi bhi) in
        Hashtbl.add m.and_cache key r;
        r
  end

let rec mk_or m a b =
  if a = btrue || b = btrue then btrue
  else if a = bfalse then b
  else if b = bfalse then a
  else if a = b then a
  else begin
    let key = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt m.or_cache key with
    | Some r -> r
    | None ->
        let va = m.var_of.(a) and vb = m.var_of.(b) in
        let v = min va vb in
        let alo, ahi = if va = v then (m.lo_of.(a), m.hi_of.(a)) else (a, a) in
        let blo, bhi = if vb = v then (m.lo_of.(b), m.hi_of.(b)) else (b, b) in
        let r = mk m v (mk_or m alo blo) (mk_or m ahi bhi) in
        Hashtbl.add m.or_cache key r;
        r
  end

let rec mk_diff m a b =
  if a = bfalse || b = btrue then bfalse
  else if b = bfalse then a
  else if a = b then bfalse
  else begin
    let key = (a, b) in
    match Hashtbl.find_opt m.diff_cache key with
    | Some r -> r
    | None ->
        let va = m.var_of.(a) and vb = m.var_of.(b) in
        let v = min va vb in
        let alo, ahi = if va = v then (m.lo_of.(a), m.hi_of.(a)) else (a, a) in
        let blo, bhi = if vb = v then (m.lo_of.(b), m.hi_of.(b)) else (b, b) in
        let r = mk m v (mk_diff m alo blo) (mk_diff m ahi bhi) in
        Hashtbl.add m.diff_cache key r;
        r
  end

let rec ite m f g h =
  if f = btrue then g
  else if f = bfalse then h
  else if g = h then g
  else if g = btrue && h = bfalse then f
  else begin
    let key = (f, g, h) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some r -> r
    | None ->
        let v =
          min m.var_of.(f) (min m.var_of.(g) m.var_of.(h))
        in
        let split n =
          if m.var_of.(n) = v then (m.lo_of.(n), m.hi_of.(n)) else (n, n)
        in
        let flo, fhi = split f and glo, ghi = split g and hlo, hhi = split h in
        let r = mk m v (ite m flo glo hlo) (ite m fhi ghi hhi) in
        Hashtbl.add m.ite_cache key r;
        r
  end

let exists m qs f =
  let cache = Hashtbl.create 1024 in
  let rec go n =
    if n < 2 then n
    else
      match Hashtbl.find_opt cache n with
      | Some r -> r
      | None ->
          let v = m.var_of.(n) in
          let lo = go m.lo_of.(n) and hi = go m.hi_of.(n) in
          let r = if qs.(v) then mk_or m lo hi else mk m v lo hi in
          Hashtbl.add cache n r;
          r
  in
  go f

let substitute m map f =
  let cache = Hashtbl.create 1024 in
  let rec go n =
    if n < 2 then n
    else
      match Hashtbl.find_opt cache n with
      | Some r -> r
      | None ->
          let v = map.(m.var_of.(n)) in
          let lo = go m.lo_of.(n) and hi = go m.hi_of.(n) in
          (* The new variable may break the ordering of the rebuilt
             children, so compose with ITE instead of [mk]. *)
          let r = ite m (var m v) hi lo in
          Hashtbl.add cache n r;
          r
  in
  go f

let sat_count m ~over f =
  let total_over = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 over in
  let cache : (int, float) Hashtbl.t = Hashtbl.create 1024 in
  (* counted over the suffix of [over]-variables strictly above [from_var] *)
  let vars_above = Array.make (m.nvars + 1) 0 in
  for v = m.nvars - 1 downto 0 do
    vars_above.(v) <- vars_above.(v + 1) + if over.(v) then 1 else 0
  done;
  let rec go n =
    if n = bfalse then 0.0
    else if n = btrue then 1.0
    else
      match Hashtbl.find_opt cache n with
      | Some r -> r
      | None ->
          let v = m.var_of.(n) in
          let weight child =
            let cv = if child < 2 then m.nvars else m.var_of.(child) in
            (* don't-care [over]-variables between v (exclusive) and cv *)
            let skipped = vars_above.(v + 1) - vars_above.(min cv m.nvars) in
            go child *. (2.0 ** float_of_int skipped)
          in
          let r = weight m.lo_of.(n) +. weight m.hi_of.(n) in
          Hashtbl.add cache n r;
          r
  in
  if f = bfalse then 0.0
  else if f = btrue then 2.0 ** float_of_int total_over
  else begin
    let v = m.var_of.(f) in
    let skipped = total_over - vars_above.(v) in
    go f *. (2.0 ** float_of_int skipped)
  end

let iter_sats m ~over f k =
  let pos_of = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace pos_of v i) over;
  let assignment = Array.make (Array.length over) false in
  (* Walk the BDD; expand don't-cares among [over] variables. *)
  let rec expand idx n =
    if idx = Array.length over then (if n = btrue then k (Array.copy assignment))
    else begin
      let v = over.(idx) in
      let nv = if n < 2 then max_int else m.var_of.(n) in
      if nv = v then begin
        if m.lo_of.(n) <> bfalse then begin
          assignment.(idx) <- false;
          expand (idx + 1) m.lo_of.(n)
        end;
        if m.hi_of.(n) <> bfalse then begin
          assignment.(idx) <- true;
          expand (idx + 1) m.hi_of.(n)
        end
      end
      else if nv > v then begin
        (* n does not test v: both values possible *)
        if n <> bfalse then begin
          assignment.(idx) <- false;
          expand (idx + 1) n;
          assignment.(idx) <- true;
          expand (idx + 1) n
        end
      end
      else begin
        (* n tests a variable outside [over] (or before v): descend both *)
        if m.lo_of.(n) <> bfalse then expand idx m.lo_of.(n);
        if m.hi_of.(n) <> bfalse then expand idx m.hi_of.(n)
      end
    end
  in
  if f <> bfalse then expand 0 f
