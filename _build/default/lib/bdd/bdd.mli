(** Reduced ordered binary decision diagrams, hash-consed.

    The substrate for the bddbddb-like baseline engine (paper §2, [26]):
    relations are encoded as boolean functions over bit-blasted attribute
    domains, so Datalog evaluation becomes BDD algebra (AND + EXISTS for
    joins, OR for union, DIFF for the delta). Node arenas report their
    footprint to {!Rs_storage.Memtrack}, so the baseline hits the same
    simulated-OOM wall the paper reports for bddbddb on large domains. *)

type mgr

type node = int
(** Node handle. [bfalse] and [btrue] are the terminals. *)

val bfalse : node

val btrue : node

val create : nvars:int -> mgr
(** Manager over variables [0 .. nvars-1] in natural order. *)

exception Deadline_exceeded

val set_deadline : mgr -> float option -> unit
(** [set_deadline m (Some t)] makes node allocation raise
    {!Deadline_exceeded} once the wall clock passes [t] (checked every few
    thousand allocations). BDD operations on exploding domains cannot
    otherwise be interrupted, and the bddbddb baseline needs to report
    "timeout" exactly like the paper does. *)

val nvars : mgr -> int

val node_count : mgr -> int
(** Allocated (live) nodes — the "BDD blow-up" observable. *)

val var : mgr -> int -> node
(** The function [v_i]. *)

val mk : mgr -> int -> node -> node -> node
(** [mk m v lo hi]: the reduced node testing [v]. *)

val mk_and : mgr -> node -> node -> node

val mk_or : mgr -> node -> node -> node

val mk_diff : mgr -> node -> node -> node

val ite : mgr -> node -> node -> node -> node

val exists : mgr -> bool array -> node -> node
(** [exists m qs f] quantifies away every variable [v] with [qs.(v)]. *)

val substitute : mgr -> int array -> node -> node
(** [substitute m map f] replaces variable [v] by variable [map.(v)]
    everywhere (general, order-breaking renames allowed; [map] must be
    injective on the support of [f]). *)

val sat_count : mgr -> over:bool array -> node -> float
(** Number of satisfying assignments counting only the variables marked in
    [over] (the relation's domain bits). *)

val iter_sats : mgr -> over:int array -> node -> (bool array -> unit) -> unit
(** Enumerates assignments restricted to the listed variables, expanding
    don't-cares; for materializing small results. *)
