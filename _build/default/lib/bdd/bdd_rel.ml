module Relation = Rs_relation.Relation

type space = { mgr : Bdd.mgr; bits : int; ndomains : int }

let make_space ~bits ~ndomains = { mgr = Bdd.create ~nvars:(bits * ndomains); bits; ndomains }

let domain_vars sp d = List.init sp.bits (fun i -> (d * sp.bits) + i)

(* bit [i] of a domain is the (bits-1-i)-th variable: MSB first *)
let tuple_bdd sp domains tuple =
  let m = sp.mgr in
  let acc = ref Bdd.btrue in
  Array.iteri
    (fun col v ->
      let d = domains.(col) in
      for i = 0 to sp.bits - 1 do
        let bit = (v lsr (sp.bits - 1 - i)) land 1 in
        let bv = Bdd.var m ((d * sp.bits) + i) in
        let lit = if bit = 1 then bv else Bdd.ite m bv Bdd.bfalse Bdd.btrue in
        acc := Bdd.mk_and m !acc lit
      done)
    tuple;
  !acc

let of_relation sp rel =
  let arity = Relation.arity rel in
  let domains = Array.init arity (fun i -> i) in
  let acc = ref Bdd.bfalse in
  let tuple = Array.make arity 0 in
  for row = 0 to Relation.nrows rel - 1 do
    for c = 0 to arity - 1 do
      tuple.(c) <- Relation.get rel ~row ~col:c
    done;
    acc := Bdd.mk_or sp.mgr !acc (tuple_bdd sp domains tuple)
  done;
  !acc

let over_mask sp arity =
  let mask = Array.make (Bdd.nvars sp.mgr) false in
  for d = 0 to arity - 1 do
    List.iter (fun v -> mask.(v) <- true) (domain_vars sp d)
  done;
  mask

let count sp ~arity node =
  int_of_float (Bdd.sat_count sp.mgr ~over:(over_mask sp arity) node +. 0.5)

let to_relation sp ~arity ?(name = "_bdd") node =
  let rel = Relation.create ~name arity in
  let over = Array.of_list (List.concat_map (domain_vars sp) (List.init arity (fun d -> d))) in
  Bdd.iter_sats sp.mgr ~over node (fun bits ->
      let tuple = Array.make arity 0 in
      Array.iteri
        (fun i b -> if b then begin
           let d = i / sp.bits and pos = i mod sp.bits in
           tuple.(d) <- tuple.(d) lor (1 lsl (sp.bits - 1 - pos))
         end)
        bits;
      Relation.push_row rel tuple);
  Relation.account rel;
  rel

let rename sp ~from_domains ~to_domains node =
  let map = Array.init (Bdd.nvars sp.mgr) (fun v -> v) in
  Array.iteri
    (fun i fd ->
      let td = to_domains.(i) in
      for b = 0 to sp.bits - 1 do
        map.((fd * sp.bits) + b) <- (td * sp.bits) + b
      done)
    from_domains;
  Bdd.substitute sp.mgr map node

let exists_domains sp ds node =
  let mask = Array.make (Bdd.nvars sp.mgr) false in
  List.iter (fun d -> List.iter (fun v -> mask.(v) <- true) (domain_vars sp d)) ds;
  Bdd.exists sp.mgr mask node
