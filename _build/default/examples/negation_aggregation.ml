(* Stratified negation and aggregation (paper §3.3).

     dune exec examples/negation_aggregation.exe

   Evaluates Example 2 (the complement of transitive closure, which needs
   stratified negation) and the COUNT extension of Example 1 on a small
   graph, printing both results. *)

let () =
  let edges = [ (1, 2); (2, 3); (3, 1); (4, 5) ] in
  let arc () = Recstep.Frontend.edges edges in
  Printf.printf "arc = %s\n\n"
    (String.concat " " (List.map (fun (x, y) -> Printf.sprintf "%d->%d" x y) edges));

  (* ntc(x, y) :- node(x), node(y), !tc(x, y). *)
  let result, _ = Recstep.Frontend.run_text ~edb:[ ("arc", arc ()) ] Recstep.Programs.ntc in
  let ntc = Recstep.Frontend.result_rows result "ntc" in
  Printf.printf "complement of TC has %d pairs, e.g.:\n" (List.length ntc);
  List.iteri (fun i row -> if i < 5 then Printf.printf "  ntc(%d, %d)\n" row.(0) row.(1)) ntc;

  (* gtc(x, COUNT(y)) :- tc(x, y). *)
  let result, _ = Recstep.Frontend.run_text ~edb:[ ("arc", arc ()) ] Recstep.Programs.gtc in
  print_endline "\nvertices reachable per source (COUNT aggregation):";
  List.iter
    (fun row -> Printf.printf "  gtc(%d) = %d\n" row.(0) row.(1))
    (Recstep.Frontend.result_rows result "gtc")
