(* Program analysis with non-linear and mutual recursion.

     dune exec examples/program_analysis.exe

   Runs the two static analyses from the paper's evaluation on generated
   program graphs: Andersen's points-to analysis (non-linear recursion: two
   pointsTo atoms in one body) and the context-sensitive points-to analysis
   CSPA (three mutually recursive relations). Prints result sizes and the
   stratification the rule analyzer derived. *)

let show_strata src =
  let an = Recstep.Analyzer.analyze (Recstep.Parser.parse src) in
  List.iter
    (fun s ->
      Printf.printf "  stratum %d%s: %s\n" s.Recstep.Analyzer.index
        (if s.Recstep.Analyzer.recursive then " (recursive)" else "")
        (String.concat ", " s.Recstep.Analyzer.preds))
    an.Recstep.Analyzer.strata

let () =
  print_endline "== Andersen's points-to analysis ==";
  show_strata Recstep.Programs.andersen;
  let edb = Rs_datagen.Prog_analysis.andersen ~seed:1 ~nvars:1000 in
  List.iter
    (fun (name, r) -> Printf.printf "  input %-10s %6d facts\n" name (Rs_relation.Relation.nrows r))
    edb;
  let result, stats = Recstep.Frontend.run_text ~edb Recstep.Programs.andersen in
  Printf.printf "  pointsTo: %d facts in %d iterations (%.4fs simulated)\n\n"
    (List.length (Recstep.Frontend.result_rows result "pointsTo"))
    result.Recstep.Interpreter.iterations stats.Rs_parallel.Pool.vtime;

  print_endline "== Context-sensitive points-to analysis (CSPA) ==";
  show_strata Recstep.Programs.cspa;
  let edb = Rs_datagen.Prog_analysis.cspa_input ~seed:2 ~scale:1 "httpd" in
  let result, stats = Recstep.Frontend.run_text ~edb Recstep.Programs.cspa in
  List.iter
    (fun out ->
      Printf.printf "  %-12s %6d facts\n" out
        (List.length (Recstep.Frontend.result_rows result out)))
    [ "valueFlow"; "memoryAlias"; "valueAlias" ];
  Printf.printf "  solved in %d iterations (%.4fs simulated)\n"
    result.Recstep.Interpreter.iterations stats.Rs_parallel.Pool.vtime
