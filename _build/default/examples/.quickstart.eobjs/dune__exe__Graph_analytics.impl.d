examples/graph_analytics.ml: Array List Printf Recstep Rs_datagen Rs_parallel Rs_relation
