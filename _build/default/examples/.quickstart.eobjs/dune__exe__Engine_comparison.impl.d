examples/engine_comparison.ml: List Printf Recstep Rs_datagen Rs_engines Rs_parallel Rs_relation String
