examples/negation_aggregation.mli:
