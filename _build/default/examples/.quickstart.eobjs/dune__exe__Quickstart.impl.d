examples/quickstart.ml: Array List Printf Recstep Rs_parallel
