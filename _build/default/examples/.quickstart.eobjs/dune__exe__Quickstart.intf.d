examples/quickstart.mli:
