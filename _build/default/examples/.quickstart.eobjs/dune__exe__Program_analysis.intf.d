examples/program_analysis.mli:
