examples/negation_aggregation.ml: Array List Printf Recstep String
