examples/program_analysis.ml: List Printf Recstep Rs_datagen Rs_parallel Rs_relation String
