(* Quickstart: evaluate a Datalog program from source text.

     dune exec examples/quickstart.exe

   Parses the paper's transitive-closure program (Example 1), supplies the
   [arc] input relation, runs the engine to fixpoint, and prints the result
   and a few engine statistics. *)

let program =
  {|
.input arc
.output tc
tc(x, y) :- arc(x, y).
tc(x, y) :- tc(x, z), arc(z, y).
|}

let () =
  (* the input graph: a little diamond with a tail *)
  let arc = Recstep.Frontend.edges [ (1, 2); (1, 3); (2, 4); (3, 4); (4, 5) ] in
  let result, stats = Recstep.Frontend.run_text ~edb:[ ("arc", arc) ] program in
  print_endline "tc(x, y):";
  List.iter
    (fun row -> Printf.printf "  tc(%d, %d)\n" row.(0) row.(1))
    (Recstep.Frontend.result_rows result "tc");
  Printf.printf
    "\n%d fixpoint iterations, %d SQL-style queries issued, %d strata solved with PBME\n"
    result.Recstep.Interpreter.iterations result.Recstep.Interpreter.queries
    result.Recstep.Interpreter.pbme_strata;
  Printf.printf "simulated time on a %d-core pool: %.4fs\n" stats.Rs_parallel.Pool.workers
    stats.Rs_parallel.Pool.vtime
