(* Graph analytics with recursive aggregation.

     dune exec examples/graph_analytics.exe

   The three graph tasks of the paper's RMAT sweep on one generated graph:
   REACH (plain recursion), CC (recursive MIN aggregation) and SSSP
   (recursive MIN over an arithmetic aggregate argument), plus the PBME
   bit-matrix path for transitive closure on a dense graph. *)

module Graphs = Rs_datagen.Graphs

let () =
  let arc = Graphs.rmat ~seed:11 ~n:4096 ~m:40960 in
  let n = Graphs.vertex_count arc in
  Printf.printf "RMAT graph: %d vertices, %d edges\n\n" n (Rs_relation.Relation.nrows arc);

  (* REACH from one source *)
  let id = Recstep.Frontend.relation_of_list ~name:"id" 1 [ [| 1 |] ] in
  let result, stats =
    Recstep.Frontend.run_text
      ~edb:[ ("arc", Rs_relation.Relation.copy arc); ("id", id) ]
      Recstep.Programs.reach
  in
  Printf.printf "REACH: %d vertices reachable from 1 (%.4fs simulated)\n"
    (List.length (Recstep.Frontend.result_rows result "reach"))
    stats.Rs_parallel.Pool.vtime;

  (* Connected components via recursive MIN *)
  let result, stats =
    Recstep.Frontend.run_text ~edb:[ ("arc", Rs_relation.Relation.copy arc) ] Recstep.Programs.cc
  in
  Printf.printf "CC: %d distinct component labels (%.4fs simulated)\n"
    (List.length (Recstep.Frontend.result_rows result "cc"))
    stats.Rs_parallel.Pool.vtime;

  (* SSSP on the weighted graph *)
  let warc = Graphs.add_weights ~seed:5 ~max_weight:100 arc in
  let id = Recstep.Frontend.relation_of_list ~name:"id" 1 [ [| 1 |] ] in
  let result, stats =
    Recstep.Frontend.run_text ~edb:[ ("arc", warc); ("id", id) ] Recstep.Programs.sssp
  in
  let dists = Recstep.Frontend.result_rows result "sssp" in
  let far = List.fold_left (fun acc row -> max acc row.(1)) 0 dists in
  Printf.printf "SSSP: %d vertices reached, max distance %d (%.4fs simulated)\n\n"
    (List.length dists) far stats.Rs_parallel.Pool.vtime;

  (* PBME on a dense graph: the interpreter recognizes the TC shape and
     switches to the bit-matrix kernels *)
  let dense = Graphs.gnp ~seed:3 ~n:500 ~p:0.02 in
  let result, stats =
    Recstep.Frontend.run_text ~edb:[ ("arc", dense) ] Recstep.Programs.tc
  in
  Printf.printf "TC on dense G500: %d pairs, PBME strata used: %d (%.4fs simulated)\n"
    (List.length (Recstep.Frontend.result_rows result "tc"))
    result.Recstep.Interpreter.pbme_strata stats.Rs_parallel.Pool.vtime
