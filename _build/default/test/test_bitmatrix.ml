module Bitmatrix = Rs_bitmatrix.Bitmatrix
module Adjacency = Rs_bitmatrix.Adjacency
module Pbme = Rs_bitmatrix.Pbme
module Pool = Rs_parallel.Pool

let check = Alcotest.(check bool)

let pool () =
  let p = Pool.create ~workers:4 () in
  Pool.begin_run p;
  p

let test_bitmatrix_basic () =
  let m = Bitmatrix.create 10 in
  check "empty" false (Bitmatrix.get m 3 4);
  Bitmatrix.set m 3 4;
  check "set" true (Bitmatrix.get m 3 4);
  check "tas old" false (Bitmatrix.test_and_set m 3 4);
  check "tas new" true (Bitmatrix.test_and_set m 4 3);
  Alcotest.(check int) "cardinal" 2 (Bitmatrix.cardinal m);
  Bitmatrix.release m

let test_bitmatrix_relation_roundtrip () =
  let edges = [ (0, 1); (2, 3); (3, 0); (4, 4) ] in
  let rel = Recstep.Frontend.edges edges in
  let m = Bitmatrix.of_relation 5 rel in
  let back = Bitmatrix.to_relation m in
  Alcotest.(check (list (pair int int)))
    "roundtrip" (List.sort compare edges)
    (Refs.sorted_pairs (Rs_relation.Relation.to_rows back));
  Bitmatrix.release m

let test_bitmatrix_accounting () =
  Rs_storage.Memtrack.hard_reset ();
  let m = Bitmatrix.create 100 in
  Alcotest.(check int) "accounted = required" (Bitmatrix.required_bytes 100)
    (Rs_storage.Memtrack.live ());
  Bitmatrix.release m;
  Alcotest.(check int) "released" 0 (Rs_storage.Memtrack.live ())

let test_adjacency () =
  let rel = Recstep.Frontend.edges [ (0, 1); (0, 2); (2, 1); (3, 3) ] in
  let adj = Adjacency.build 4 rel in
  Alcotest.(check int) "degree 0" 2 (Adjacency.degree adj 0);
  Alcotest.(check int) "degree 1" 0 (Adjacency.degree adj 1);
  let succ = Adjacency.fold_succ adj 0 (fun acc v -> v :: acc) [] in
  Alcotest.(check (list int)) "succ 0" [ 1; 2 ] (List.sort compare succ);
  Adjacency.release adj

let gen_graph = Refs.arbitrary_edges ~max_nodes:10 ~max_edges:25 ()

let vertex_bound edges = 1 + List.fold_left (fun m (x, y) -> max m (max x y)) 0 edges

let prop_pbme_tc =
  QCheck2.Test.make ~name:"PBME TC = reference closure" ~count:60 gen_graph (fun edges ->
      QCheck2.assume (edges <> []);
      let n = vertex_bound edges in
      let m = Pbme.tc (pool ()) ~n ~arc:(Refs.relation_of_edges edges) in
      let got = Refs.sorted_pairs (Rs_relation.Relation.to_rows (Bitmatrix.to_relation m)) in
      Bitmatrix.release m;
      got = (Refs.IntPairSet.elements (Refs.transitive_closure edges) |> List.sort compare))

let prop_pbme_sg_both_variants =
  QCheck2.Test.make ~name:"PBME SG coord = no-coord = reference" ~count:40 gen_graph
    (fun edges ->
      QCheck2.assume (edges <> []);
      let n = vertex_bound edges in
      let expected = Refs.IntPairSet.elements (Refs.same_generation edges) |> List.sort compare in
      let run coordinated =
        let m = Pbme.sg ~coordinated (pool ()) ~n ~arc:(Refs.relation_of_edges edges) in
        let got = Refs.sorted_pairs (Rs_relation.Relation.to_rows (Bitmatrix.to_relation m)) in
        Bitmatrix.release m;
        got
      in
      run false = expected && run true = expected)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_pbme_tc; prop_pbme_sg_both_variants ]

let suite =
  [
    Alcotest.test_case "bitmatrix basics" `Quick test_bitmatrix_basic;
    Alcotest.test_case "bitmatrix relation roundtrip" `Quick test_bitmatrix_relation_roundtrip;
    Alcotest.test_case "bitmatrix accounting" `Quick test_bitmatrix_accounting;
    Alcotest.test_case "adjacency" `Quick test_adjacency;
  ]
  @ qsuite
