module Graphs = Rs_datagen.Graphs
module Prog = Rs_datagen.Prog_analysis
module Relation = Rs_relation.Relation

let check = Alcotest.(check bool)

let test_gnp_deterministic () =
  let a = Graphs.gnp ~seed:7 ~n:100 ~p:0.05 in
  let b = Graphs.gnp ~seed:7 ~n:100 ~p:0.05 in
  check "same rows" true (Relation.to_rows a = Relation.to_rows b);
  let c = Graphs.gnp ~seed:8 ~n:100 ~p:0.05 in
  check "different seed differs" true (Relation.to_rows a <> Relation.to_rows c)

let test_gnp_density () =
  let n = 200 and p = 0.05 in
  let g = Graphs.gnp ~seed:1 ~n ~p in
  let m = Relation.nrows g in
  let expected = p *. float_of_int (n * n) in
  check "edge count near expectation" true
    (float_of_int m > 0.7 *. expected && float_of_int m < 1.3 *. expected);
  let ok = ref true in
  for row = 0 to m - 1 do
    let x = Relation.get g ~row ~col:0 and y = Relation.get g ~row ~col:1 in
    if x = y || x < 0 || x >= n || y < 0 || y >= n then ok := false
  done;
  check "no self loops, in range" true !ok

let test_gnp_extremes () =
  let empty = Graphs.gnp ~seed:1 ~n:10 ~p:0.0 in
  Alcotest.(check int) "p=0 empty" 0 (Relation.nrows empty);
  let full = Graphs.gnp ~seed:1 ~n:10 ~p:1.0 in
  Alcotest.(check int) "p=1 complete" 90 (Relation.nrows full)

let test_rmat () =
  let g = Graphs.rmat ~seed:3 ~n:1000 ~m:5000 in
  check "roughly m edges (self loops removed)" true
    (Relation.nrows g > 4000 && Relation.nrows g <= 5000);
  check "vertex bound power of two" true (Graphs.vertex_count g <= 1024);
  let deg = Array.make 1024 0 in
  for row = 0 to Relation.nrows g - 1 do
    let x = Relation.get g ~row ~col:0 in
    deg.(x) <- deg.(x) + 1
  done;
  let dmax = Array.fold_left max 0 deg in
  let avg = float_of_int (Relation.nrows g) /. 1024.0 in
  check "skewed degrees" true (float_of_int dmax > 4.0 *. avg)

let test_real_world_presets () =
  List.iter
    (fun (name, _) ->
      let g = Graphs.real_world_like ~seed:1 ~scale:1 name in
      check (name ^ " nonempty") true (Relation.nrows g > 1000))
    Graphs.real_world_profiles;
  Alcotest.check_raises "unknown preset" (Invalid_argument "unknown real-world preset zzz")
    (fun () -> ignore (Graphs.real_world_like ~seed:1 ~scale:1 "zzz"))

let test_weights () =
  let g = Graphs.gnp ~seed:2 ~n:50 ~p:0.1 in
  let w = Graphs.add_weights ~seed:3 ~max_weight:10 g in
  Alcotest.(check int) "arity 3" 3 (Relation.arity w);
  Alcotest.(check int) "same rows" (Relation.nrows g) (Relation.nrows w);
  let ok = ref true in
  for row = 0 to Relation.nrows w - 1 do
    let d = Relation.get w ~row ~col:2 in
    if d < 1 || d > 10 then ok := false
  done;
  check "weights in range" true !ok

let test_random_sources () =
  let ids = Graphs.random_sources ~seed:4 ~n:100 ~count:10 in
  Alcotest.(check int) "ten sources" 10 (List.length ids);
  List.iter
    (fun id ->
      Alcotest.(check int) "singleton" 1 (Relation.nrows id);
      let v = Relation.get id ~row:0 ~col:0 in
      check "in range" true (v >= 0 && v < 100))
    ids

let test_andersen_shapes () =
  let edb = Prog.andersen ~seed:5 ~nvars:500 in
  Alcotest.(check (list string)) "relations"
    [ "addressOf"; "assign"; "load"; "store" ]
    (List.map fst edb);
  List.iter (fun (_, r) -> Alcotest.(check int) "binary" 2 (Relation.arity r)) edb;
  let total = List.fold_left (fun acc (_, r) -> acc + Relation.nrows r) 0 edb in
  check "statement mix ~3n" true (total > 1200 && total < 1800);
  (* determinism *)
  let edb2 = Prog.andersen ~seed:5 ~nvars:500 in
  check "deterministic" true
    (List.for_all2 (fun (_, a) (_, b) -> Relation.to_rows a = Relation.to_rows b) edb edb2)

let test_andersen_dataset_growth () =
  let size n =
    List.fold_left (fun acc (_, r) -> acc + Relation.nrows r) 0 (Prog.andersen_dataset ~seed:1 ~scale:1 n)
  in
  check "growing datasets" true (size 1 < size 3 && size 3 < size 7);
  Alcotest.check_raises "bad index" (Invalid_argument "andersen_dataset: n must be in 1..7")
    (fun () -> ignore (Prog.andersen_dataset ~seed:1 ~scale:1 8))

let test_cspa_input () =
  List.iter
    (fun (name, _) ->
      let edb = Prog.cspa_input ~seed:1 ~scale:1 name in
      Alcotest.(check (list string)) "relations" [ "assign"; "dereference" ] (List.map fst edb);
      check (name ^ " nonempty") true (Relation.nrows (List.assoc "assign" edb) > 100))
    Prog.system_program_profiles

let test_csda_input_chain_depth () =
  let edb = Prog.csda_input ~seed:1 ~scale:1 "httpd" in
  let arc = List.assoc "arc" edb in
  (* forward-only CFG edges: many semi-naive iterations *)
  let ok = ref true in
  for row = 0 to Relation.nrows arc - 1 do
    if Relation.get arc ~row ~col:0 >= Relation.get arc ~row ~col:1 then ok := false
  done;
  check "edges strictly forward" true !ok;
  check "nullEdge present" true (Relation.nrows (List.assoc "nullEdge" edb) > 0)

let suite =
  [
    Alcotest.test_case "gnp deterministic" `Quick test_gnp_deterministic;
    Alcotest.test_case "gnp density" `Quick test_gnp_density;
    Alcotest.test_case "gnp extremes" `Quick test_gnp_extremes;
    Alcotest.test_case "rmat skew" `Quick test_rmat;
    Alcotest.test_case "real-world presets" `Quick test_real_world_presets;
    Alcotest.test_case "weights" `Quick test_weights;
    Alcotest.test_case "random sources" `Quick test_random_sources;
    Alcotest.test_case "andersen shapes" `Quick test_andersen_shapes;
    Alcotest.test_case "andersen growth" `Quick test_andersen_dataset_growth;
    Alcotest.test_case "cspa inputs" `Quick test_cspa_input;
    Alcotest.test_case "csda chains" `Quick test_csda_input_chain_depth;
  ]
