test/test_core.ml: Alcotest Array Fun List QCheck2 QCheck_alcotest Recstep Refs Rs_datagen Rs_relation Rs_storage
