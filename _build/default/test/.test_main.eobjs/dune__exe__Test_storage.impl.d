test/test_storage.ml: Alcotest Filename Rs_storage Sys
