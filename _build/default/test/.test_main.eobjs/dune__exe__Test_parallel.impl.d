test/test_parallel.ml: Alcotest Array List Rs_parallel Rs_util
