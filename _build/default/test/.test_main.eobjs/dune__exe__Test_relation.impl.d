test/test_relation.ml: Alcotest Domain List QCheck2 QCheck_alcotest Refs Rs_parallel Rs_relation Rs_storage Rs_util
