test/test_benchkit.ml: Alcotest List Recstep Rs_benchkit Rs_engines Rs_parallel Rs_relation Rs_storage
