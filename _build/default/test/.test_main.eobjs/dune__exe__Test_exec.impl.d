test/test_exec.ml: Alcotest Array List QCheck2 QCheck_alcotest Rs_exec Rs_parallel Rs_relation String
