test/test_util.ml: Alcotest Array List QCheck2 QCheck_alcotest Refs Rs_util String
