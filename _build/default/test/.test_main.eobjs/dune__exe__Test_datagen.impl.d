test/test_datagen.ml: Alcotest Array List Rs_datagen Rs_relation
