test/test_invariants.ml: Alcotest Array Fun List QCheck2 QCheck_alcotest Recstep Refs Rs_engines Rs_parallel Rs_relation Rs_storage
