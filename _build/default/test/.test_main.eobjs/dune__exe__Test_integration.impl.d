test/test_integration.ml: Alcotest Array Filename List Recstep Rs_datagen Rs_engines Rs_parallel Rs_relation Sys
