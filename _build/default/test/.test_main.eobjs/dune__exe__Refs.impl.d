test/refs.ml: Array Hashtbl Int List Option QCheck2 Recstep Rs_relation Set
