test/test_engines.ml: Alcotest List Printf QCheck2 QCheck_alcotest Recstep Refs Rs_engines Rs_parallel Rs_relation
