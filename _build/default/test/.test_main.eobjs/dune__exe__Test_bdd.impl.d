test/test_bdd.ml: Alcotest Array Hashtbl List QCheck2 QCheck_alcotest Recstep Refs Rs_bdd Rs_relation Rs_util
