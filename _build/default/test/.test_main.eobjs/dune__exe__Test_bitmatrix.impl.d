test/test_bitmatrix.ml: Alcotest List QCheck2 QCheck_alcotest Recstep Refs Rs_bitmatrix Rs_parallel Rs_relation Rs_storage
