module Bdd = Rs_bdd.Bdd
module Bdd_rel = Rs_bdd.Bdd_rel

let check = Alcotest.(check bool)

(* random boolean formula over [nvars] variables, built with manager ops,
   paired with a reference evaluator *)
type formula =
  | F_var of int
  | F_and of formula * formula
  | F_or of formula * formula
  | F_diff of formula * formula
  | F_true
  | F_false

let rec gen_formula nvars depth =
  let open QCheck2.Gen in
  if depth = 0 then
    oneof [ map (fun v -> F_var v) (int_range 0 (nvars - 1)); return F_true; return F_false ]
  else
    oneof
      [
        map (fun v -> F_var v) (int_range 0 (nvars - 1));
        map2 (fun a b -> F_and (a, b)) (gen_formula nvars (depth - 1)) (gen_formula nvars (depth - 1));
        map2 (fun a b -> F_or (a, b)) (gen_formula nvars (depth - 1)) (gen_formula nvars (depth - 1));
        map2 (fun a b -> F_diff (a, b)) (gen_formula nvars (depth - 1)) (gen_formula nvars (depth - 1));
      ]

let rec build m = function
  | F_var v -> Bdd.var m v
  | F_and (a, b) -> Bdd.mk_and m (build m a) (build m b)
  | F_or (a, b) -> Bdd.mk_or m (build m a) (build m b)
  | F_diff (a, b) -> Bdd.mk_diff m (build m a) (build m b)
  | F_true -> Bdd.btrue
  | F_false -> Bdd.bfalse

let rec truth assignment = function
  | F_var v -> assignment.(v)
  | F_and (a, b) -> truth assignment a && truth assignment b
  | F_or (a, b) -> truth assignment a || truth assignment b
  | F_diff (a, b) -> truth assignment a && not (truth assignment b)
  | F_true -> true
  | F_false -> false

let nvars = 5

let all_assignments =
  List.init (1 lsl nvars) (fun bits -> Array.init nvars (fun v -> (bits lsr v) land 1 = 1))

(* evaluate a BDD through sat enumeration over the full space *)
let bdd_truth_table m node =
  let over = Array.init nvars (fun v -> v) in
  let sat = Hashtbl.create 32 in
  Bdd.iter_sats m ~over node (fun a -> Hashtbl.replace sat (Array.to_list a) ());
  List.map (fun a -> Hashtbl.mem sat (Array.to_list a)) all_assignments

let prop_ops_match_semantics =
  QCheck2.Test.make ~name:"BDD ops = boolean semantics" ~count:200 (gen_formula nvars 4)
    (fun f ->
      let m = Bdd.create ~nvars in
      let node = build m f in
      bdd_truth_table m node = List.map (fun a -> truth a f) all_assignments)

let prop_sat_count =
  QCheck2.Test.make ~name:"sat_count = enumeration" ~count:200 (gen_formula nvars 4) (fun f ->
      let m = Bdd.create ~nvars in
      let node = build m f in
      let over = Array.make nvars true in
      let count = int_of_float (Bdd.sat_count m ~over node +. 0.5) in
      let truth_count = List.length (List.filter (fun a -> truth a f) all_assignments) in
      count = truth_count)

let prop_exists =
  QCheck2.Test.make ~name:"exists = or of restrictions" ~count:150
    QCheck2.Gen.(pair (gen_formula nvars 3) (int_range 0 (nvars - 1)))
    (fun (f, v) ->
      let m = Bdd.create ~nvars in
      let node = build m f in
      let qs = Array.make nvars false in
      qs.(v) <- true;
      let ex = Bdd.exists m qs node in
      let expected a =
        let a0 = Array.copy a and a1 = Array.copy a in
        a0.(v) <- false;
        a1.(v) <- true;
        truth a0 f || truth a1 f
      in
      bdd_truth_table m ex = List.map expected all_assignments)

let prop_substitute_swap =
  QCheck2.Test.make ~name:"substitute var swap" ~count:150 (gen_formula nvars 3) (fun f ->
      let m = Bdd.create ~nvars in
      let node = build m f in
      (* swap variables 0 and 1 (an order-breaking rename) *)
      let map = Array.init nvars (fun v -> if v = 0 then 1 else if v = 1 then 0 else v) in
      let swapped = Bdd.substitute m map node in
      let expected a =
        let b = Array.copy a in
        b.(0) <- a.(1);
        b.(1) <- a.(0);
        truth b f
      in
      bdd_truth_table m swapped = List.map expected all_assignments)

let test_ite () =
  let m = Bdd.create ~nvars:3 in
  let x0 = Bdd.var m 0 and x1 = Bdd.var m 1 and x2 = Bdd.var m 2 in
  let f = Bdd.ite m x0 x1 x2 in
  (* x0 ? x1 : x2 *)
  let over = [| 0; 1; 2 |] in
  let sats = ref [] in
  Bdd.iter_sats m ~over f (fun a -> sats := Array.to_list a :: !sats);
  Alcotest.(check int) "sat count of mux" 4 (List.length !sats)

let test_deadline () =
  let m = Bdd.create ~nvars:40 in
  Bdd.set_deadline m (Some (Rs_util.Clock.now () -. 1.0));
  (* force enough fresh node allocations to cross the check stride *)
  let result =
    try
      let acc = ref Bdd.btrue in
      for v = 0 to 39 do
        acc := Bdd.mk_and m !acc (Bdd.var m v)
      done;
      let big = ref Bdd.bfalse in
      let rng = Rs_util.Rng.create 3 in
      for _ = 0 to 5000 do
        let cube = ref Bdd.btrue in
        for v = 0 to 39 do
          let lit = if Rs_util.Rng.bool rng 0.5 then Bdd.var m v
            else Bdd.ite m (Bdd.var m v) Bdd.bfalse Bdd.btrue in
          cube := Bdd.mk_and m !cube lit
        done;
        big := Bdd.mk_or m !big !cube
      done;
      false
    with Bdd.Deadline_exceeded -> true
  in
  check "deadline fires" true result

(* --- relation encoding --- *)

let gen_rel = QCheck2.Gen.(list_size (int_range 0 20) (pair (int_range 0 14) (int_range 0 14)))

let prop_relation_roundtrip =
  QCheck2.Test.make ~name:"relation -> BDD -> relation" ~count:150 gen_rel (fun pairs ->
      let pairs = List.sort_uniq compare pairs in
      let sp = Bdd_rel.make_space ~bits:4 ~ndomains:4 in
      let rel = Recstep.Frontend.edges pairs in
      let node = Bdd_rel.of_relation sp rel in
      let count_ok = Bdd_rel.count sp ~arity:2 node = List.length pairs in
      let back = Bdd_rel.to_relation sp ~arity:2 node in
      count_ok && Refs.sorted_pairs (Rs_relation.Relation.to_rows back) = pairs)

let prop_rename_roundtrip =
  QCheck2.Test.make ~name:"rename there and back" ~count:100 gen_rel (fun pairs ->
      let pairs = List.sort_uniq compare pairs in
      let sp = Bdd_rel.make_space ~bits:4 ~ndomains:4 in
      let node = Bdd_rel.of_relation sp (Recstep.Frontend.edges pairs) in
      let moved = Bdd_rel.rename sp ~from_domains:[| 0; 1 |] ~to_domains:[| 2; 3 |] node in
      let back = Bdd_rel.rename sp ~from_domains:[| 2; 3 |] ~to_domains:[| 0; 1 |] moved in
      back = node)

let test_exists_domains () =
  let sp = Bdd_rel.make_space ~bits:3 ~ndomains:2 in
  let node = Bdd_rel.of_relation sp (Recstep.Frontend.edges [ (1, 2); (1, 3); (4, 2) ]) in
  let proj = Bdd_rel.exists_domains sp [ 1 ] node in
  Alcotest.(check int) "projected count counts col-0 values"
    2
    (let over = Array.make (Bdd.nvars sp.Bdd_rel.mgr) false in
     List.iter (fun v -> over.(v) <- true) (Bdd_rel.domain_vars sp 0);
     int_of_float (Bdd.sat_count sp.Bdd_rel.mgr ~over proj +. 0.5))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_ops_match_semantics;
      prop_sat_count;
      prop_exists;
      prop_substitute_swap;
      prop_relation_roundtrip;
      prop_rename_roundtrip;
    ]

let suite =
  [
    Alcotest.test_case "ite mux" `Quick test_ite;
    Alcotest.test_case "deadline" `Quick test_deadline;
    Alcotest.test_case "exists_domains projection" `Quick test_exists_domains;
  ]
  @ qsuite
