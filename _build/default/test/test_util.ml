module Rng = Rs_util.Rng
module Int_key = Rs_util.Int_key
module Int_vec = Rs_util.Int_vec
module Bitset = Rs_util.Bitset
module Union_find = Rs_util.Union_find

let check = Alcotest.(check bool)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check "in range" true (v >= 0 && v < 17);
    let f = Rng.float r 3.0 in
    check "float range" true (f >= 0.0 && f < 3.0)
  done

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.next a) in
  let ys = List.init 20 (fun _ -> Rng.next b) in
  check "split streams differ" true (xs <> ys)

let test_rng_shuffle_permutes () =
  let r = Rng.create 11 in
  let a = Array.init 50 (fun i -> i) in
  let b = Array.copy a in
  Rng.shuffle r b;
  Alcotest.(check (list int))
    "same multiset" (List.sort compare (Array.to_list a))
    (List.sort compare (Array.to_list b))

let test_int_vec_basic () =
  let v = Int_vec.create () in
  for i = 0 to 99 do
    Int_vec.push v (i * 3)
  done;
  Alcotest.(check int) "length" 100 (Int_vec.length v);
  Alcotest.(check int) "get" 27 (Int_vec.get v 9);
  Int_vec.set v 9 (-1);
  Alcotest.(check int) "set" (-1) (Int_vec.get v 9);
  Alcotest.check_raises "oob" (Invalid_argument "Int_vec.get") (fun () ->
      ignore (Int_vec.get v 100))

let test_int_vec_append_blit () =
  let a = Int_vec.of_array [| 1; 2; 3 |] and b = Int_vec.of_array [| 4; 5 |] in
  Int_vec.append a b;
  Alcotest.(check (array int)) "append" [| 1; 2; 3; 4; 5 |] (Int_vec.to_array a);
  let dst = Int_vec.create_sized 5 in
  Int_vec.blit a 1 dst 0 4;
  Alcotest.(check (array int)) "blit" [| 2; 3; 4; 5; 0 |] (Int_vec.to_array dst)

let test_bitset_basic () =
  let b = Bitset.create 200 in
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 64;
  Bitset.add b 199;
  check "mem 63" true (Bitset.mem b 63);
  check "not mem 1" false (Bitset.mem b 1);
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal b);
  Bitset.remove b 63;
  check "removed" false (Bitset.mem b 63);
  check "test_and_set new" true (Bitset.test_and_set b 5);
  check "test_and_set old" false (Bitset.test_and_set b 5)

let test_bitset_iter_sorted () =
  let b = Bitset.create 300 in
  let added = [ 5; 62; 63; 64; 126; 127; 128; 250 ] in
  List.iter (Bitset.add b) added;
  let seen = ref [] in
  Bitset.iter (fun i -> seen := i :: !seen) b;
  Alcotest.(check (list int)) "iter order" added (List.rev !seen)

let test_bitset_union () =
  let a = Bitset.create 100 and b = Bitset.create 100 in
  Bitset.add a 1;
  Bitset.add b 2;
  check "changed" true (Bitset.union_into a b);
  check "no change" false (Bitset.union_into a b);
  Alcotest.(check int) "card" 2 (Bitset.cardinal a)

let prop_bitset_matches_set =
  QCheck2.Test.make ~name:"bitset matches reference set" ~count:200
    QCheck2.Gen.(list (pair (int_range 0 99) bool))
    (fun ops ->
      let b = Bitset.create 100 in
      let s =
        List.fold_left
          (fun s (i, add) ->
            if add then begin
              Bitset.add b i;
              Refs.IntSet.add i s
            end
            else begin
              Bitset.remove b i;
              Refs.IntSet.remove i s
            end)
          Refs.IntSet.empty ops
      in
      Refs.IntSet.cardinal s = Bitset.cardinal b
      && Refs.IntSet.for_all (fun i -> Bitset.mem b i) s)

let prop_int_key_roundtrip =
  QCheck2.Test.make ~name:"pack2 roundtrips" ~count:500
    QCheck2.Gen.(pair (int_range 0 Int_key.max_attr) (int_range 0 Int_key.max_attr))
    (fun (x, y) -> Int_key.unpack2 (Int_key.pack2 x y) = (x, y))

let prop_int_key_injective =
  QCheck2.Test.make ~name:"pack2 injective" ~count:500
    QCheck2.Gen.(
      pair
        (pair (int_range 0 10000) (int_range 0 10000))
        (pair (int_range 0 10000) (int_range 0 10000)))
    (fun ((a, b), (c, d)) ->
      (a, b) = (c, d) || Int_key.pack2 a b <> Int_key.pack2 c d)

let test_union_find () =
  let u = Union_find.create 10 in
  Union_find.union u 0 1;
  Union_find.union u 1 2;
  Union_find.union u 5 6;
  check "same 0 2" true (Union_find.same u 0 2);
  check "diff 0 5" false (Union_find.same u 0 5);
  let mins = Union_find.component_min u in
  Alcotest.(check int) "min of 2's comp" 0 mins.(2);
  Alcotest.(check int) "min of 6's comp" 5 mins.(6);
  Alcotest.(check int) "singleton" 9 mins.(9)

let test_table_printer () =
  let s = Rs_util.Table_printer.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  check "contains header" true (String.length s > 0);
  check "has separator" true (String.contains s '-')

let qsuite = List.map QCheck_alcotest.to_alcotest
  [ prop_bitset_matches_set; prop_int_key_roundtrip; prop_int_key_injective ]

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "int_vec basic" `Quick test_int_vec_basic;
    Alcotest.test_case "int_vec append/blit" `Quick test_int_vec_append_blit;
    Alcotest.test_case "bitset basic" `Quick test_bitset_basic;
    Alcotest.test_case "bitset iter" `Quick test_bitset_iter_sorted;
    Alcotest.test_case "bitset union" `Quick test_bitset_union;
    Alcotest.test_case "union find" `Quick test_union_find;
    Alcotest.test_case "table printer" `Quick test_table_printer;
  ]
  @ qsuite
