module Memtrack = Rs_storage.Memtrack
module Txn = Rs_storage.Txn

let check = Alcotest.(check bool)

let test_memtrack_basic () =
  Memtrack.hard_reset ();
  Memtrack.alloc 100;
  Alcotest.(check int) "live" 100 (Memtrack.live ());
  Memtrack.alloc 50;
  Memtrack.free 30;
  Alcotest.(check int) "live after free" 120 (Memtrack.live ());
  check "peak >= 150" true (Memtrack.peak () >= 150);
  Memtrack.reset_peak ();
  Alcotest.(check int) "peak reset to live" 120 (Memtrack.peak ())

let test_memtrack_budget () =
  Memtrack.hard_reset ();
  Memtrack.set_budget (Some 1000);
  Memtrack.alloc 900;
  (try
     Memtrack.alloc 200;
     Alcotest.fail "expected Simulated_oom"
   with Memtrack.Simulated_oom { requested; live; budget } ->
     Alcotest.(check int) "requested" 200 requested;
     Alcotest.(check int) "live" 900 live;
     Alcotest.(check int) "budget" 1000 budget);
  (* the failed allocation was rolled back *)
  Alcotest.(check int) "rolled back" 900 (Memtrack.live ());
  Memtrack.set_budget None;
  Memtrack.alloc 200;
  Alcotest.(check int) "unbudgeted alloc ok" 1100 (Memtrack.live ());
  Memtrack.hard_reset ()

let test_memtrack_percent () =
  Memtrack.set_machine_bytes 1000;
  check "percent" true (abs_float (Memtrack.percent 250 -. 25.0) < 1e-9);
  Memtrack.set_machine_bytes (2 * 1024 * 1024 * 1024)

let scratch = Filename.concat (Filename.get_temp_dir_name ()) "_recstep_test_scratch.bin"

let test_txn_per_query_flushes () =
  let flushed = ref [] in
  let t = Txn.create ~scratch ~on_flush:(fun b -> flushed := b :: !flushed) Txn.Per_query in
  Txn.note_dirty t 1000;
  Txn.query_boundary t;
  Txn.note_dirty t 500;
  Txn.query_boundary t;
  Txn.query_boundary t (* nothing dirty: no flush *);
  Txn.finish t;
  Alcotest.(check (list int)) "flushes" [ 500; 1000 ] !flushed;
  Alcotest.(check int) "bytes written" 1500 (Txn.bytes_written t);
  Alcotest.(check int) "flush count" 2 (Txn.flush_count t)

let test_txn_eost_single_flush () =
  let flushed = ref [] in
  let t = Txn.create ~scratch ~on_flush:(fun b -> flushed := b :: !flushed) Txn.Eost in
  Txn.note_dirty t 1000;
  Txn.query_boundary t;
  Txn.note_dirty t 500;
  Txn.query_boundary t;
  Alcotest.(check (list int)) "no flush before finish" [] !flushed;
  Txn.finish t;
  Alcotest.(check (list int)) "one final flush" [ 1500 ] !flushed;
  Alcotest.(check int) "flush count" 1 (Txn.flush_count t)

let test_txn_scratch_removed () =
  let t = Txn.create ~scratch Txn.Per_query in
  Txn.note_dirty t 10;
  Txn.query_boundary t;
  Txn.finish t;
  check "scratch cleaned" false (Sys.file_exists scratch)

let suite =
  [
    Alcotest.test_case "memtrack alloc/free/peak" `Quick test_memtrack_basic;
    Alcotest.test_case "memtrack budget OOM" `Quick test_memtrack_budget;
    Alcotest.test_case "memtrack percent" `Quick test_memtrack_percent;
    Alcotest.test_case "txn per-query flushes" `Quick test_txn_per_query_flushes;
    Alcotest.test_case "txn EOST single flush" `Quick test_txn_eost_single_flush;
    Alcotest.test_case "txn scratch removed" `Quick test_txn_scratch_removed;
  ]
