(* Benchmark harness: regenerates every table and figure of the paper
   (default mode), or runs the Bechamel operator microbenches (--micro).

     dune exec bench/main.exe                 # all experiments, scale 1
     dune exec bench/main.exe -- --only fig10 --scale 2
     dune exec bench/main.exe -- --list
     dune exec bench/main.exe -- --micro *)

let machine_mib = 256

(* --- Bechamel microbenches: one Test.make per paper table/figure, timing
   the kernel that dominates that experiment. --- *)

let micro () =
  let open Bechamel in
  let pool () =
    let p = Rs_parallel.Pool.create ~workers:8 () in
    Rs_parallel.Pool.begin_run p;
    p
  in
  let arc = Rs_datagen.Graphs.gnp ~seed:1 ~n:300 ~p:0.03 in
  let rmat = Rs_datagen.Graphs.rmat ~seed:2 ~n:4096 ~m:40960 in
  let aa = Rs_datagen.Prog_analysis.andersen_dataset ~seed:3 ~scale:1 2 in
  let cspa = Rs_datagen.Prog_analysis.cspa_input ~seed:4 ~scale:1 "httpd" in
  let csda = Rs_datagen.Prog_analysis.csda_input ~seed:5 ~scale:1 "httpd" in
  let run_program src edb =
    let program = Recstep.Parser.parse src in
    fun () ->
      let p = pool () in
      let edb = List.map (fun (n, r) -> (n, Rs_relation.Relation.copy r)) edb in
      ignore (Recstep.Interpreter.run ~pool:p ~edb program)
  in
  let staged f = Staged.stage f in
  let tests =
    [
      (* Table 1 is qualitative; its "kernel" is engine dispatch. *)
      Test.make ~name:"table1:capability_lookup"
        (staged (fun () -> ignore (Rs_engines.Engines.by_name "RecStep")));
      Test.make ~name:"fig2:cspa_httpd_recstep" (staged (run_program Recstep.Programs.cspa cspa));
      Test.make ~name:"fig3:dedup_fast_1e4"
        (staged (fun () ->
             let d = Rs_relation.Dedup.create Rs_relation.Dedup.Fast 2 in
             for i = 0 to 9999 do
               ignore (Rs_relation.Dedup.add2 d (i land 255) i)
             done));
      Test.make ~name:"fig6:pbme_tc_kernel"
        (staged (fun () ->
             let p = pool () in
             let m = Rs_bitmatrix.Pbme.tc p ~n:300 ~arc in
             Rs_bitmatrix.Bitmatrix.release m));
      Test.make ~name:"fig7:pbme_sg_kernel"
        (staged (fun () ->
             let p = pool () in
             let m = Rs_bitmatrix.Pbme.sg p ~n:300 ~arc in
             Rs_bitmatrix.Bitmatrix.release m));
      Test.make ~name:"fig8:tc_gnp_recstep" (staged (run_program Recstep.Programs.tc [ ("arc", arc) ]));
      Test.make ~name:"fig9:cc_rmat_recstep" (staged (run_program Recstep.Programs.cc [ ("arc", rmat) ]));
      Test.make ~name:"fig10:sg_gnp_recstep" (staged (run_program Recstep.Programs.sg [ ("arc", arc) ]));
      Test.make ~name:"fig11:hash_join_probe"
        (staged (fun () ->
             let idx = Rs_relation.Hash_index.build arc [| 0 |] in
             let hits = ref 0 in
             for v = 0 to 299 do
               Rs_relation.Hash_index.iter_matches1 idx v (fun _ -> incr hits)
             done));
      Test.make ~name:"fig12:reach_rmat_recstep"
        (staged
           (let id = Rs_relation.Relation.of_rows ~name:"id" 1 [ [| 0 |] ] in
            run_program Recstep.Programs.reach [ ("arc", rmat); ("id", id) ]));
      Test.make ~name:"fig13:cc_realworld_kernel" (staged (run_program Recstep.Programs.cc [ ("arc", rmat) ]));
      Test.make ~name:"fig14:relation_append_account"
        (staged (fun () ->
             let r = Rs_relation.Relation.create 2 in
             for i = 0 to 9999 do
               Rs_relation.Relation.push2 r i (i * 7)
             done;
             Rs_relation.Relation.account r;
             Rs_relation.Relation.release r));
      Test.make ~name:"fig15:andersen_recstep" (staged (run_program Recstep.Programs.andersen aa));
      Test.make ~name:"fig16:csda_httpd_recstep" (staged (run_program Recstep.Programs.csda csda));
      Test.make ~name:"table4:pool_parallel_for"
        (staged (fun () ->
             let p = pool () in
             let acc = ref 0 in
             Rs_parallel.Pool.parallel_for p 0 100000 (fun lo hi ->
                 for i = lo to hi - 1 do
                   acc := !acc + i
                 done)));
      Test.make ~name:"costmodel:opsd_vs_tpsd"
        (staged (fun () ->
             let p = pool () in
             ignore (Rs_exec.Cost.calibrate p ())));
    ]
  in
  let test = Test.make_grouped ~name:"recstep" ~fmt:"%s/%s" tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:false () in
  let raw = Benchmark.all cfg instances test in
  let results =
    Analyze.merge ols instances [ Analyze.all ols Toolkit.Instance.monotonic_clock raw ]
  in
  Hashtbl.iter
    (fun _measure tbl ->
      let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
      List.iter
        (fun (name, ols_result) ->
          let est =
            match Analyze.OLS.estimates ols_result with
            | Some [ e ] -> Printf.sprintf "%12.0f ns/run" e
            | _ -> "n/a"
          in
          Printf.printf "%-40s %s\n" name est)
        (List.sort compare rows))
    results

(* --- CLI --- *)

let () =
  Rs_storage.Memtrack.set_machine_bytes (machine_mib * 1024 * 1024);
  let scale = ref 1 in
  let only = ref [] in
  let list_only = ref false in
  let micro_mode = ref false in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := max 1 (int_of_string v);
        parse rest
    | "--only" :: v :: rest ->
        only := !only @ String.split_on_char ',' v;
        parse rest
    | "--list" :: rest ->
        list_only := true;
        parse rest
    | "--micro" :: rest ->
        micro_mode := true;
        parse rest
    | other :: _ ->
        Printf.eprintf "unknown argument %s\n" other;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !list_only then
    List.iter
      (fun e -> Printf.printf "%-10s %s\n" e.Rs_benchkit.Registry.id e.Rs_benchkit.Registry.title)
      Rs_benchkit.Registry.all
  else if !micro_mode then micro ()
  else begin
    Printf.printf
      "RecStep reproduction harness — simulated %d-core pool, machine memory %d MiB, scale %d\n"
      (Rs_parallel.Pool.workers (Rs_parallel.Pool.create ()))
      machine_mib !scale;
    let selected =
      match !only with
      | [] -> Rs_benchkit.Registry.all
      | ids ->
          List.map
            (fun id ->
              match Rs_benchkit.Registry.find id with
              | Some e -> e
              | None ->
                  Printf.eprintf "unknown experiment %s (try --list)\n" id;
                  exit 2)
            ids
    in
    let t0 = Unix.gettimeofday () in
    List.iter (fun e -> e.Rs_benchkit.Registry.run ~scale:!scale) selected;
    Printf.printf "\nharness done in %.1fs wall\n" (Unix.gettimeofday () -. t0)
  end
