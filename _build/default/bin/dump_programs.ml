let () =
  List.iter
    (fun (name, src) ->
      let oc = open_out (Printf.sprintf "programs/%s.datalog" name) in
      output_string oc (String.trim src);
      output_char oc '\n';
      close_out oc)
    Recstep.Programs.all
